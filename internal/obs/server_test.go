package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	o := &Observer{Metrics: NewRegistry()}
	o.Metrics.Counter("campaign_faults_done_total", "done").Add(3)
	camp := o.StartCampaign("stuckat c95s", 10)
	camp.FaultDone(OutcomeExact)
	camp.FaultDone(OutcomeApproximate)

	srv := httptest.NewServer(NewMux(o))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "campaign_faults_done_total 3") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if !strings.Contains(body, "# TYPE campaign_faults_done_total counter") {
		t.Fatal("/metrics is not Prometheus text format")
	}

	code, body = get(t, srv, "/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress: code %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	if len(snap.Campaigns) != 1 {
		t.Fatalf("progress has %d campaigns, want 1", len(snap.Campaigns))
	}
	c := snap.Campaigns[0]
	if c.Name != "stuckat c95s" || c.Total != 10 || c.Done != 2 || c.Exact != 1 || c.Degraded != 1 {
		t.Fatalf("heartbeat %+v", c)
	}
	if c.Finished {
		t.Fatal("campaign reported finished while running")
	}

	// pprof index must answer — the profile endpoints hang off the same mux.
	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
	if code, _ = get(t, srv, "/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars: code %d", code)
	}
	if code, _ = get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: code %d, want 404", code)
	}
}

// TestDebugServerNilObserver: the server must stay up (empty bodies)
// when no observer subsystems are configured.
func TestDebugServerNilObserver(t *testing.T) {
	srv := httptest.NewServer(NewMux(nil))
	defer srv.Close()
	if code, _ := get(t, srv, "/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics on nil observer: code %d", code)
	}
	code, body := get(t, srv, "/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress on nil observer: code %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || len(snap.Campaigns) != 0 {
		t.Fatalf("nil observer progress: %v %q", err, body)
	}
}

func TestServeAndClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live server /progress: code %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
