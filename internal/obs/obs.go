// Package obs is the repository's unified observability layer: a
// zero-dependency (standard library only) metrics registry, structured
// logging helpers, a per-fault event tracer, live campaign heartbeats, and
// a debug HTTP server tying them together.
//
// Everything here is default-off and nil-safe. A nil *Observer, *Campaign,
// *Tracer, *Counter, *Gauge or *Histogram accepts every method call as a
// no-op, so instrumented code never branches into allocation or
// synchronization when observability is disabled — the serial==parallel
// bit-identical guarantees of the analysis layer and its hot-path
// benchmarks are untouched (a CI guard pins the disabled per-fault path at
// zero allocations).
package obs

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how one fault's record was produced, mirroring the
// analysis layer's exact / degraded / errored trichotomy.
type Outcome int

const (
	// OutcomeExact marks a fault whose analysis completed exactly.
	OutcomeExact Outcome = iota
	// OutcomeApproximate marks a fault that blew its resource budget and
	// degraded to a random-vector simulation estimate.
	OutcomeApproximate
	// OutcomeError marks a fault whose analysis panicked.
	OutcomeError
	// OutcomeRescued marks a fault whose first attempt blew a resource
	// bound but whose recovery-ladder retry completed exactly. Rescued is a
	// sub-classification of exact: heartbeats count it under both, so
	// Analyzed = Exact + Degraded + Errored keeps reconciling.
	OutcomeRescued
)

// String returns the outcome's wire label (used in trace events).
func (o Outcome) String() string {
	switch o {
	case OutcomeExact:
		return "exact"
	case OutcomeApproximate:
		return "approximate"
	case OutcomeRescued:
		return "rescued"
	default:
		return "error"
	}
}

// Observer is the umbrella handle threaded through campaign runners: an
// optional structured logger, an optional metrics registry, an optional
// per-fault tracer, and the set of live campaign heartbeats served at
// /progress. The zero value (and nil) disable everything.
type Observer struct {
	// Log receives structured events (nil = silent; use Logger for a
	// never-nil view).
	Log *slog.Logger
	// Metrics, when non-nil, accumulates counters/gauges/histograms for
	// the /metrics and /debug/vars endpoints.
	Metrics *Registry
	// Tracer, when non-nil, streams one span event per analyzed fault.
	Tracer *Tracer
	// Flight, when non-nil, retains a bounded ring of structured campaign
	// events for post-mortem dumps (see flight.go).
	Flight *FlightRecorder

	mu        sync.Mutex
	campaigns []*Campaign
	cm        *CampaignMetrics
	timeline  *Timeline
}

// Logger returns the observer's logger, or a no-op logger when the
// observer (or its Log field) is nil. The result is never nil.
func (o *Observer) Logger() *slog.Logger {
	if o == nil || o.Log == nil {
		return Nop()
	}
	return o.Log
}

// StartCampaign registers a new live campaign heartbeat. A nil observer
// returns a nil (no-op) campaign.
func (o *Observer) StartCampaign(name string, total int) *Campaign {
	if o == nil {
		return nil
	}
	c := &Campaign{name: name, total: int64(total), start: time.Now()}
	o.mu.Lock()
	o.campaigns = append(o.campaigns, c)
	o.mu.Unlock()
	if o.Metrics != nil {
		o.CampaignMetrics().CampaignsRunning.Add(1)
	}
	return c
}

// Campaigns lists every campaign started under this observer, in start
// order (nil-safe).
func (o *Observer) Campaigns() []*Campaign {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Campaign(nil), o.campaigns...)
}

// ProgressSnapshot is the JSON body of the /progress heartbeat endpoint.
type ProgressSnapshot struct {
	Campaigns []CampaignSnapshot `json:"campaigns"`
	// FaultLatency carries p50/p95/p99 of per-fault analysis time,
	// present once the latency histogram has observations.
	FaultLatency *LatencyQuantiles `json:"fault_latency,omitempty"`
}

// LatencyQuantiles summarizes the fault-latency histogram for /progress
// and post-mortem reports.
type LatencyQuantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_s"`
	P95   float64 `json:"p95_s"`
	P99   float64 `json:"p99_s"`
}

// Progress snapshots every campaign (nil-safe).
func (o *Observer) Progress() ProgressSnapshot {
	snap := ProgressSnapshot{Campaigns: []CampaignSnapshot{}}
	for _, c := range o.Campaigns() {
		snap.Campaigns = append(snap.Campaigns, c.Snapshot())
	}
	if o != nil && o.Metrics != nil {
		if h := o.CampaignMetrics().FaultLatency; h.Count() > 0 {
			s := h.Snapshot()
			snap.FaultLatency = &LatencyQuantiles{
				Count: s.Count,
				P50:   s.Quantile(0.50),
				P95:   s.Quantile(0.95),
				P99:   s.Quantile(0.99),
			}
		}
	}
	return snap
}

// CampaignMetrics is the standard metric set of the campaign runners,
// registered once per observer under stable Prometheus names. All fields
// are nil (no-op) when the observer has no registry.
type CampaignMetrics struct {
	// campaign_faults_done_total etc.: per-fault outcome counters.
	FaultsDone, FaultsExact, FaultsDegraded, FaultsErrored, FaultsResumed, FaultsSkipped *Counter
	// campaign_fault_latency_seconds: per-fault wall-clock latency.
	FaultLatency *Histogram
	// campaign_gate_evaluations_total: selective-trace work actually done.
	GateEvaluations *Counter
	// campaign_cone_gates: per-fault size of the merged fan-out cone the
	// propagation loop walked (the full gate count under the full-scan
	// reference) — the cone-size distribution behind scheduling reports.
	ConeGates *Histogram
	// campaign_gates_visited_total / campaign_gates_skipped_total: gates
	// the propagation loops examined versus gates cone restriction never
	// touched, accumulated live (per-worker deltas folded after every
	// fault) so the timeline can track the skip ratio mid-campaign.
	GatesVisited, GatesSkipped *Counter
	// campaigns_running: currently active campaign count.
	CampaignsRunning *Gauge
	// bdd_nodes / bdd_peak_nodes: live and high-water node-table sizes.
	BDDNodes, BDDPeakNodes *Gauge
	// bdd_rebuilds_total: generational GC passes over all engines.
	BDDRebuilds *Counter
	// bdd_table_views / bdd_table_epoch: shared-backend shape — manager
	// views attached to the campaign's node table, and the table's
	// in-place adoption generation (GC/sift count visible to all views).
	BDDTableViews, BDDTableEpoch *Gauge
	// bdd_cache_hits_total / bdd_cache_misses_total: operation caches,
	// folded in once at campaign finish.
	CacheHits, CacheMisses *Counter
	// bdd_cache_hits_live / bdd_cache_misses_live: the same cache traffic
	// accumulated continuously during the run (per-worker deltas folded
	// after every fault), so the timeline sampler can compute an
	// interval-local hit ratio mid-campaign.
	CacheHitsLive, CacheMissesLive *Gauge
	// bdd_table_buckets: hash-bucket capacity of the campaign's unique
	// table; with bdd_nodes it yields the table occupancy (load factor).
	BDDTableBuckets *Gauge
	// checkpoint_appends_total / checkpoint_fsyncs_total: persistence I/O.
	CheckpointAppends, CheckpointFsyncs *Counter
	// campaign_faults_rescued_total: faults the recovery-ladder retry
	// converted from a blown budget back to an exact result (a sub-count of
	// campaign_faults_exact_total).
	FaultsRescued *Counter
	// recovery_retries_total: relaxed-budget re-attempts the ladder made.
	RecoveryRetries *Counter
	// recovery_nodes_reclaimed_total / recovery_sift_runs_total: work done
	// by the GC and sift rungs across all engines.
	RecoveryNodesReclaimed, RecoverySiftRuns *Counter
	// governor_parked_workers / governor_heap_bytes: memory-governor state.
	GovernorParked, GovernorHeapBytes *Gauge
	// governor_park_events_total: worker park transitions under pressure.
	GovernorParkEvents *Counter
	// chaos_injected_total: failures fired by the chaos-injection harness
	// (0 outside chaos runs).
	ChaosInjected *Counter
	// calibration_budget_ops: the per-fault op budget currently armed by
	// budget self-calibration (0 until the warmup window fills).
	CalibrationBudgetOps *Gauge
	// calibration_updates_total: budget re-derivations published by the
	// calibrator (the first arming and every refresh that raised a bound).
	CalibrationUpdates *Counter
	// supervisor_worker_deaths_total: shard worker subprocesses that died
	// (exit, heartbeat stall, or OOM-style kill) under supervision.
	SupervisorWorkerDeaths *Counter
	// supervisor_restarts_total: lease re-dispatches after worker death.
	SupervisorRestarts *Counter
	// supervisor_bisects_total: repeatedly-fatal shard splits.
	SupervisorBisects *Counter
	// supervisor_quarantined_total: poison faults isolated as Err records.
	SupervisorQuarantined *Counter
	// supervisor_workers_live: worker subprocesses currently running.
	SupervisorWorkersLive *Gauge
}

// CampaignMetrics lazily registers (once) and returns the standard
// campaign metric set. A nil observer — or one without a registry —
// returns a *CampaignMetrics whose fields are all nil and therefore
// no-ops.
func (o *Observer) CampaignMetrics() *CampaignMetrics {
	if o == nil || o.Metrics == nil {
		return &CampaignMetrics{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.cm != nil {
		return o.cm
	}
	r := o.Metrics
	cm := &CampaignMetrics{
		FaultsDone:      r.Counter("campaign_faults_done_total", "Faults finished (analyzed or restored from checkpoint)."),
		FaultsExact:     r.Counter("campaign_faults_exact_total", "Faults analyzed exactly."),
		FaultsDegraded:  r.Counter("campaign_faults_degraded_total", "Faults that blew their budget and degraded to simulation estimates."),
		FaultsErrored:   r.Counter("campaign_faults_errored_total", "Faults whose analysis panicked (isolated per-fault errors)."),
		FaultsResumed:   r.Counter("campaign_faults_resumed_total", "Faults restored from a checkpoint instead of re-analyzed."),
		FaultsSkipped:   r.Counter("campaign_faults_skipped_total", "Faults never reached because the campaign was cancelled."),
		FaultLatency:    r.Histogram("campaign_fault_latency_seconds", "Per-fault analysis wall-clock latency."),
		GateEvaluations: r.Counter("campaign_gate_evaluations_total", "Gates whose difference function was computed (selective trace skipped the rest)."),
		ConeGates: r.Histogram("campaign_cone_gates", "Per-fault merged fan-out-cone size walked by cone-restricted propagation.",
			1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536),
		GatesVisited:      r.Counter("campaign_gates_visited_total", "Gates examined by the propagation loops across all analyses."),
		GatesSkipped:      r.Counter("campaign_gates_skipped_total", "Gates cone-restricted propagation never touched (0 under the full-scan reference)."),
		CampaignsRunning:  r.Gauge("campaigns_running", "Campaigns currently running."),
		BDDNodes:          r.Gauge("bdd_nodes", "Most recently observed BDD node-table size of any worker engine."),
		BDDPeakNodes:      r.Gauge("bdd_peak_nodes", "Largest BDD node table any single engine reached."),
		BDDRebuilds:       r.Counter("bdd_rebuilds_total", "Generational BDD-manager GC passes over all engines."),
		BDDTableViews:     r.Gauge("bdd_table_views", "Manager views sharing the campaign's BDD node table (1 per worker when shared; 1 when isolated)."),
		BDDTableEpoch:     r.Gauge("bdd_table_epoch", "In-place adoption generation of the shared node table (bumps on GC/sift)."),
		CacheHits:         r.Counter("bdd_cache_hits_total", "BDD apply/ite/not operation-cache hits."),
		CacheMisses:       r.Counter("bdd_cache_misses_total", "BDD apply/ite/not operation-cache misses."),
		CacheHitsLive:     r.Gauge("bdd_cache_hits_live", "Operation-cache hits accumulated live during the run (timeline source)."),
		CacheMissesLive:   r.Gauge("bdd_cache_misses_live", "Operation-cache misses accumulated live during the run (timeline source)."),
		BDDTableBuckets:   r.Gauge("bdd_table_buckets", "Hash-bucket capacity of the campaign's BDD unique table."),
		CheckpointAppends: r.Counter("checkpoint_appends_total", "Fault records appended to the checkpoint file."),
		CheckpointFsyncs:  r.Counter("checkpoint_fsyncs_total", "fsync calls issued by the checkpointer."),

		FaultsRescued:          r.Counter("campaign_faults_rescued_total", "Faults whose relaxed-budget retry completed exactly (sub-count of exact)."),
		RecoveryRetries:        r.Counter("recovery_retries_total", "Relaxed-budget re-attempts made by the recovery ladder."),
		RecoveryNodesReclaimed: r.Counter("recovery_nodes_reclaimed_total", "Dead BDD nodes dropped by generational GC passes."),
		RecoverySiftRuns:       r.Counter("recovery_sift_runs_total", "Variable-reordering runs fired by the recovery ladder."),
		GovernorParked:         r.Gauge("governor_parked_workers", "Workers currently parked by the memory governor."),
		GovernorHeapBytes:      r.Gauge("governor_heap_bytes", "Heap size at the governor's last sample."),
		GovernorParkEvents:     r.Counter("governor_park_events_total", "Worker park transitions under heap pressure."),
		ChaosInjected:          r.Counter("chaos_injected_total", "Failures fired by the chaos-injection harness."),
		CalibrationBudgetOps:   r.Gauge("calibration_budget_ops", "Per-fault op budget currently armed by budget self-calibration."),
		CalibrationUpdates:     r.Counter("calibration_updates_total", "Budget re-derivations published by the calibrator."),

		SupervisorWorkerDeaths: r.Counter("supervisor_worker_deaths_total", "Shard worker subprocesses that died under supervision."),
		SupervisorRestarts:     r.Counter("supervisor_restarts_total", "Lease re-dispatches after worker death."),
		SupervisorBisects:      r.Counter("supervisor_bisects_total", "Repeatedly-fatal shard splits."),
		SupervisorQuarantined:  r.Counter("supervisor_quarantined_total", "Poison faults isolated as Err records."),
		SupervisorWorkersLive:  r.Gauge("supervisor_workers_live", "Worker subprocesses currently running."),
	}
	r.GaugeFunc("bdd_cache_hit_ratio", "Overall BDD operation-cache hit fraction.", func() float64 {
		hits, misses := cm.CacheHits.Value(), cm.CacheMisses.Value()
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	})
	o.cm = cm
	return cm
}

// Campaign is the live heartbeat of one running campaign. All counters
// are atomics so the /progress endpoint can read them while workers
// update them; every method is nil-safe.
type Campaign struct {
	name  string
	total int64
	start time.Time
	now   func() time.Time // test clock; nil = time.Now

	done, exact, degraded, errored, resumed, skipped atomic.Int64
	rescued                                          atomic.Int64
	gatesVisited, gatesSkipped                       atomic.Int64
	order                                            atomic.Pointer[string]
	canceled, finished                               atomic.Bool
	elapsedNS                                        atomic.Int64

	// Sliding window of recent completion times (ns since start) feeding
	// the ETA projection, so early slow faults or a bulk checkpoint
	// restore don't skew the forecast for the rest of the run.
	winMu  sync.Mutex
	win    [etaWindow]int64
	winLen int
	winPos int
}

// etaWindow is how many recent completions the ETA projection looks at.
const etaWindow = 64

func (c *Campaign) clock() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

// FaultDone records one finished fault with its outcome. OutcomeRescued
// increments both the exact and the rescued counters: rescued faults ARE
// exact results, just ones the recovery ladder had to fight for.
func (c *Campaign) FaultDone(o Outcome) {
	if c == nil {
		return
	}
	c.done.Add(1)
	c.winMu.Lock()
	c.win[c.winPos] = int64(c.clock().Sub(c.start))
	c.winPos = (c.winPos + 1) % etaWindow
	if c.winLen < etaWindow {
		c.winLen++
	}
	c.winMu.Unlock()
	switch o {
	case OutcomeExact:
		c.exact.Add(1)
	case OutcomeRescued:
		c.exact.Add(1)
		c.rescued.Add(1)
	case OutcomeApproximate:
		c.degraded.Add(1)
	case OutcomeError:
		c.errored.Add(1)
	}
}

// SetOrder labels the heartbeat with the campaign's fault dispatch policy
// (index, cone, level). Empty names are ignored.
func (c *Campaign) SetOrder(name string) {
	if c == nil || name == "" {
		return
	}
	c.order.Store(&name)
}

// AddGateWalk accumulates one fault's propagation-walk footprint: gates
// the loop visited and gates cone restriction skipped.
func (c *Campaign) AddGateWalk(visited, skipped int64) {
	if c == nil {
		return
	}
	c.gatesVisited.Add(visited)
	c.gatesSkipped.Add(skipped)
}

// AddResumed records n faults restored from a checkpoint (they count as
// done without being analyzed).
func (c *Campaign) AddResumed(n int) {
	if c == nil || n == 0 {
		return
	}
	c.resumed.Add(int64(n))
	c.done.Add(int64(n))
}

// Finish seals the heartbeat: cancellation state, unreached (skipped)
// fault count, and final elapsed time. After Finish the snapshot's counts
// are immutable and reconcile exactly with the campaign's final
// CampaignStats.
func (c *Campaign) Finish(canceled bool) {
	if c == nil {
		return
	}
	c.canceled.Store(canceled)
	c.skipped.Store(c.total - c.done.Load())
	c.elapsedNS.Store(int64(time.Since(c.start)))
	c.finished.Store(true)
}

// CampaignSnapshot is the JSON view of one campaign heartbeat.
type CampaignSnapshot struct {
	Name  string `json:"name"`
	Total int64  `json:"total"`
	// Done = Analyzed + Resumed.
	Done     int64 `json:"done"`
	Analyzed int64 `json:"analyzed"`
	Exact    int64 `json:"exact"`
	// Rescued is the sub-count of Exact that needed the recovery ladder's
	// relaxed-budget retry.
	Rescued  int64 `json:"rescued"`
	Degraded int64 `json:"degraded"`
	Errored  int64 `json:"errored"`
	Resumed  int64 `json:"resumed"`
	Skipped  int64 `json:"skipped"`
	Canceled bool  `json:"canceled"`
	Finished bool  `json:"finished"`
	// Order is the fault dispatch policy (index, cone, level); empty when
	// the runner predates scheduling or never labeled the heartbeat.
	Order string `json:"order,omitempty"`
	// GatesVisited / GatesSkipped total the propagation loops' walk
	// footprint: their ratio is the structural saving of cone-restricted
	// propagation over the full-gate scan.
	GatesVisited int64 `json:"gates_visited,omitempty"`
	GatesSkipped int64 `json:"gates_skipped,omitempty"`
	// ElapsedSec is wall-clock time since campaign start (frozen at
	// Finish); FaultsPerSec the whole-run analysis throughput over it;
	// ETASec the projected remaining time. The projection divides by the
	// completion rate of a sliding window of recent faults (falling back
	// to the whole-run average until the window has two entries), so a
	// slow warmup or a bulk checkpoint restore doesn't skew it for the
	// rest of the run. Zero when finished or nothing has completed yet.
	ElapsedSec   float64 `json:"elapsed_s"`
	FaultsPerSec float64 `json:"faults_per_s"`
	ETASec       float64 `json:"eta_s"`
}

// Snapshot captures the heartbeat's current state (zero value on nil).
func (c *Campaign) Snapshot() CampaignSnapshot {
	if c == nil {
		return CampaignSnapshot{}
	}
	s := CampaignSnapshot{
		Name:     c.name,
		Total:    c.total,
		Done:     c.done.Load(),
		Exact:    c.exact.Load(),
		Rescued:  c.rescued.Load(),
		Degraded: c.degraded.Load(),
		Errored:  c.errored.Load(),
		Resumed:  c.resumed.Load(),
		Skipped:  c.skipped.Load(),
		Canceled: c.canceled.Load(),
		Finished: c.finished.Load(),
	}
	if p := c.order.Load(); p != nil {
		s.Order = *p
	}
	s.GatesVisited = c.gatesVisited.Load()
	s.GatesSkipped = c.gatesSkipped.Load()
	s.Analyzed = s.Exact + s.Degraded + s.Errored
	now := c.clock()
	elapsed := time.Duration(c.elapsedNS.Load())
	if !s.Finished {
		elapsed = now.Sub(c.start)
	}
	s.ElapsedSec = elapsed.Seconds()
	if s.ElapsedSec > 0 && s.Analyzed > 0 {
		s.FaultsPerSec = float64(s.Analyzed) / s.ElapsedSec
		if !s.Finished {
			rate := s.FaultsPerSec
			if r := c.recentRate(now); r > 0 {
				rate = r
			}
			s.ETASec = float64(c.total-s.Done) / rate
		}
	}
	return s
}

// recentRate is the completion rate (faults/sec) over the sliding window:
// the window's fault count divided by the wall-clock span from its oldest
// completion to now — so a stall since the last completion lowers the
// rate instead of hiding behind a stale average. Zero until the window
// has at least two completions.
func (c *Campaign) recentRate(now time.Time) float64 {
	c.winMu.Lock()
	defer c.winMu.Unlock()
	if c.winLen < 2 {
		return 0
	}
	oldest := c.win[(c.winPos-c.winLen+etaWindow)%etaWindow]
	span := float64(int64(now.Sub(c.start))-oldest) / float64(time.Second)
	if span <= 0 {
		return 0
	}
	return float64(c.winLen) / span
}
