// Command bddbench benchmarks the BDD backend and the campaign runners
// that sit on it, emitting a machine-readable JSON report for CI trend
// tracking.
//
// Two layers are measured:
//
//   - Micro: apply (And), ITE, and SatCount throughput on randomized
//     functions over a single manager — the raw cost of the
//     complement-edge node store and its operation caches.
//   - Campaign: a stuck-at mini-campaign on a chosen circuit, run twice —
//     once with all workers sharing one node table (the default) and once
//     with per-worker cloned managers (CampaignConfig.Isolate) — and
//     compared on wall-clock throughput and peak heap.
//
// A second suite, -mode sched, compares propagation paths and dispatch
// orders on one campaign — the full-gate-scan reference under raw index
// order (the seed baseline) against the cone-restricted worklist under
// index, cone-cluster, and level order — and reports the throughput
// ratios, the gates-visited/skipped footprints, and whether every
// configuration produced bit-identical records (BENCH_sched.json).
//
// Usage:
//
//	bddbench                              # defaults: c1908s, 4 workers
//	bddbench -circuit c1355s -workers 8 -max 120 -out BENCH_bdd.json
//	bddbench -mode sched -circuit c1908s -workers 4 -max 120 -out BENCH_sched.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// report is the schema of the emitted JSON.
type report struct {
	Circuit   string  `json:"circuit"`
	Workers   int     `json:"workers"`
	Faults    int     `json:"faults"`
	GoVersion string  `json:"go_version"`
	NumCPU    int     `json:"num_cpu"`
	Micro     micro   `json:"micro"`
	Shared    campRun `json:"shared"`
	Isolated  campRun `json:"isolated"`
	// SpeedupShared is isolated wall / shared wall (>1 means the shared
	// backend is faster); HeapRatio is isolated peak heap / shared peak
	// heap (>1 means the shared backend is leaner).
	SpeedupShared float64 `json:"speedup_shared"`
	HeapRatio     float64 `json:"heap_ratio"`
}

type micro struct {
	ApplyNsPerOp    float64 `json:"apply_ns_per_op"`
	IteNsPerOp      float64 `json:"ite_ns_per_op"`
	SatCountNsPerOp float64 `json:"satcount_ns_per_op"`
}

type campRun struct {
	WallMs        float64 `json:"wall_ms"`
	FaultsPerSec  float64 `json:"faults_per_sec"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	PeakNodes     int     `json:"peak_nodes"`
	Rebuilds      int     `json:"rebuilds"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

func main() {
	var (
		circuit = flag.String("circuit", "c1908s", "benchmark circuit name")
		workers = flag.Int("workers", 4, "campaign worker count")
		maxF    = flag.Int("max", 80, "cap on the stuck-at fault set (0 = all)")
		mode    = flag.String("mode", "bdd", "benchmark suite: bdd (backend + shared-vs-isolated campaign) or sched (propagation path and dispatch-order comparison)")
		reps    = flag.Int("reps", 3, "repetitions per configuration in -mode sched (best wall clock wins)")
		out     = flag.String("out", "BENCH_bdd.json", "output JSON path (- for stdout)")
	)
	flag.Parse()

	switch *mode {
	case "sched":
		schedMain(*circuit, *workers, *maxF, *reps, *out)
		return
	case "bdd":
	default:
		fatal(fmt.Errorf("unknown -mode %q (want bdd or sched)", *mode))
	}

	rep := report{
		Circuit:   *circuit,
		Workers:   *workers,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	rep.Micro = microBench()

	c := circuits.MustGet(*circuit)
	fs := faults.CheckpointStuckAts(c.Decompose2())
	if *maxF > 0 && len(fs) > *maxF {
		fs = fs[:*maxF]
	}
	rep.Faults = len(fs)

	// Isolated first, then shared, each from a collected heap baseline:
	// run order must not let one mode's garbage inflate the other's peak.
	rep.Isolated, _ = campaignBench(c, fs, *workers, true)
	rep.Shared, _ = campaignBench(c, fs, *workers, false)
	if rep.Shared.WallMs > 0 {
		rep.SpeedupShared = rep.Isolated.WallMs / rep.Shared.WallMs
	}
	if rep.Shared.PeakHeapBytes > 0 {
		rep.HeapRatio = float64(rep.Isolated.PeakHeapBytes) / float64(rep.Shared.PeakHeapBytes)
	}

	fmt.Fprintf(os.Stderr,
		"bddbench %s workers=%d faults=%d: shared %.0fms (peak %s, %d nodes), isolated %.0fms (peak %s, %d nodes) -> speedup %.2fx, heap ratio %.2fx\n",
		*circuit, *workers, rep.Faults,
		rep.Shared.WallMs, fmtBytes(rep.Shared.PeakHeapBytes), rep.Shared.PeakNodes,
		rep.Isolated.WallMs, fmtBytes(rep.Isolated.PeakHeapBytes), rep.Isolated.PeakNodes,
		rep.SpeedupShared, rep.HeapRatio)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// microBench measures raw backend operation cost on randomized minterm
// functions: the per-call amortized cost of And, Ite, and SatCount
// including cache effects, which is how campaigns actually use them.
func microBench() micro {
	const (
		vars   = 20
		funcs  = 64
		cubes  = 24
		rounds = 4
	)
	m := bdd.NewAnon(vars)
	rng := rand.New(rand.NewSource(1))
	fn := make([]bdd.Ref, funcs)
	for i := range fn {
		acc := bdd.False
		for j := 0; j < cubes; j++ {
			cube := bdd.True
			for v := 0; v < vars; v++ {
				if rng.Intn(2) == 1 {
					cube = m.And(cube, m.Var(v))
				} else {
					cube = m.And(cube, m.NVar(v))
				}
			}
			acc = m.Or(acc, cube)
		}
		fn[i] = acc
	}

	ops := 0
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < funcs; i++ {
			m.And(fn[i], fn[(i+1+r)%funcs])
			ops++
		}
	}
	applyNs := float64(time.Since(t0).Nanoseconds()) / float64(ops)

	ops = 0
	t0 = time.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < funcs; i++ {
			m.Ite(fn[i], fn[(i+1+r)%funcs], fn[(i+2+r)%funcs])
			ops++
		}
	}
	iteNs := float64(time.Since(t0).Nanoseconds()) / float64(ops)

	ops = 0
	t0 = time.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < funcs; i++ {
			m.SatCount(fn[i])
			ops++
		}
	}
	satNs := float64(time.Since(t0).Nanoseconds()) / float64(ops)

	return micro{ApplyNsPerOp: applyNs, IteNsPerOp: iteNs, SatCountNsPerOp: satNs}
}

// campaignBench runs one stuck-at campaign and reports wall clock plus the
// peak live heap observed by a high-frequency sampler (HeapAlloc tracks
// the node chunks and caches directly). The heap is garbage-collected to
// a common baseline first so one mode's leftovers cannot inflate the
// other's peak.
func campaignBench(c *netlist.Circuit, fs []faults.StuckAt, workers int, isolate bool) (campRun, analysis.CampaignStats) {
	runtime.GC()
	var peak atomic.Uint64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()

	t0 := time.Now()
	study, err := analysis.RunStuckAtCampaign(c, nil, fs, analysis.CampaignConfig{
		Workers: workers,
		Isolate: isolate,
	})
	wall := time.Since(t0)
	close(stopSampler)
	<-samplerDone
	if err != nil {
		fatal(err)
	}
	st := study.Stats
	run := campRun{
		WallMs:        float64(wall.Microseconds()) / 1e3,
		PeakHeapBytes: peak.Load(),
		PeakNodes:     st.PeakNodes,
		Rebuilds:      st.Rebuilds,
		CacheHitRate:  st.Cache.HitRate(),
	}
	if wall > 0 {
		run.FaultsPerSec = float64(len(fs)) / wall.Seconds()
	}
	return run, st
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bddbench:", err)
	os.Exit(1)
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
