package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
)

// schedReport is the BENCH_sched.json schema: the same stuck-at campaign
// run under every propagation path and dispatch order, so CI can track
// whether cone-restricted propagation and cone-locality scheduling keep
// paying for themselves.
type schedReport struct {
	Circuit   string `json:"circuit"`
	Gates     int    `json:"gates"`
	Workers   int    `json:"workers"`
	Faults    int    `json:"faults"`
	Reps      int    `json:"reps"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Runs holds one entry per configuration; FullScanIndex is the seed
	// baseline (the pre-worklist engine path under raw index dispatch).
	Runs []schedRun `json:"runs"`
	// SpeedupConeVsSeed compares cone-ordered worklist throughput to the
	// full-scan index-order seed baseline; SpeedupConeVsIndex isolates the
	// scheduling policy by comparing against the index-ordered worklist.
	SpeedupConeVsSeed  float64 `json:"speedup_cone_vs_seed"`
	SpeedupConeVsIndex float64 `json:"speedup_cone_vs_index"`
	// StrictSubset reports that the worklist visited strictly fewer gates
	// than the full scan while skipping a non-zero remainder.
	StrictSubset bool `json:"strict_subset"`
	// Identical reports that every run produced bit-identical records.
	Identical bool `json:"identical"`
}

type schedRun struct {
	Name         string  `json:"name"`
	Order        string  `json:"order"`
	FullScan     bool    `json:"full_scan"`
	WallMs       float64 `json:"wall_ms"`
	FaultsPerSec float64 `json:"faults_per_sec"`
	GatesVisited int64   `json:"gates_visited"`
	GatesSkipped int64   `json:"gates_skipped"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// schedBench runs the scheduling benchmark: each configuration is repeated
// reps times and scored on its best wall clock, damping scheduler and GC
// noise the way CI needs.
func schedBench(c *netlist.Circuit, fs []faults.StuckAt, workers, reps int) schedReport {
	rep := schedReport{
		Circuit:   c.Name,
		Gates:     c.NumNets(),
		Workers:   workers,
		Faults:    len(fs),
		Reps:      reps,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}

	configs := []struct {
		name     string
		order    analysis.OrderPolicy
		fullScan bool
	}{
		{"fullscan-index", analysis.OrderIndex, true},
		{"worklist-index", analysis.OrderIndex, false},
		{"worklist-cone", analysis.OrderCone, false},
		{"worklist-level", analysis.OrderLevel, false},
	}

	rep.Identical = true
	var refRecords []analysis.StuckAtRecord
	for i, cc := range configs {
		var best schedRun
		for r := 0; r < reps; r++ {
			runtime.GC()
			t0 := time.Now()
			study, err := analysis.RunStuckAtCampaign(c, nil, fs, analysis.CampaignConfig{
				Workers:  workers,
				Order:    cc.order,
				FullScan: cc.fullScan,
			})
			wall := time.Since(t0)
			if err != nil {
				fatal(err)
			}
			if i == 0 && r == 0 {
				refRecords = study.Records
			} else if !reflect.DeepEqual(study.Records, refRecords) {
				rep.Identical = false
			}
			run := schedRun{
				Name:         cc.name,
				Order:        cc.order.String(),
				FullScan:     cc.fullScan,
				WallMs:       float64(wall.Microseconds()) / 1e3,
				GatesVisited: study.Stats.GatesVisited,
				GatesSkipped: study.Stats.GatesSkipped,
				CacheHitRate: study.Stats.Cache.HitRate(),
			}
			if wall > 0 {
				run.FaultsPerSec = float64(len(fs)) / wall.Seconds()
			}
			if r == 0 || run.WallMs < best.WallMs {
				best = run
			}
		}
		rep.Runs = append(rep.Runs, best)
	}

	seed, wlIndex, cone := rep.Runs[0], rep.Runs[1], rep.Runs[2]
	if seed.FaultsPerSec > 0 {
		rep.SpeedupConeVsSeed = cone.FaultsPerSec / seed.FaultsPerSec
	}
	if wlIndex.FaultsPerSec > 0 {
		rep.SpeedupConeVsIndex = cone.FaultsPerSec / wlIndex.FaultsPerSec
	}
	rep.StrictSubset = cone.GatesSkipped > 0 &&
		cone.GatesVisited < seed.GatesVisited &&
		cone.GatesVisited+cone.GatesSkipped == seed.GatesVisited
	return rep
}

// schedMain drives -mode sched: benchmark, human summary on stderr, JSON
// report to -out.
func schedMain(circuit string, workers, maxF, reps int, out string) {
	c := circuits.MustGet(circuit)
	fs := faults.CheckpointStuckAts(c.Decompose2())
	if maxF > 0 && len(fs) > maxF {
		fs = fs[:maxF]
	}
	rep := schedBench(c, fs, workers, reps)

	for _, run := range rep.Runs {
		fmt.Fprintf(os.Stderr,
			"bddbench sched %s workers=%d faults=%d %s: %.0fms (%.0f faults/s, visited %d, skipped %d, cache %.2f)\n",
			rep.Circuit, rep.Workers, rep.Faults, run.Name,
			run.WallMs, run.FaultsPerSec, run.GatesVisited, run.GatesSkipped, run.CacheHitRate)
	}
	fmt.Fprintf(os.Stderr,
		"bddbench sched: cone vs seed %.2fx, cone vs worklist-index %.2fx, strict subset %v, identical %v\n",
		rep.SpeedupConeVsSeed, rep.SpeedupConeVsIndex, rep.StrictSubset, rep.Identical)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		fatal(err)
	}
}
