// Command tpi plans observability test points for a circuit — the
// design action the paper's conclusions call for — and reports the
// measured exact improvement.
//
// Usage:
//
//	tpi -circuit c1355s -k 4                # center heuristic
//	tpi -circuit alu181 -k 2 -greedy        # exact greedy selection
//	tpi -bench my.bench -k 3 -o modified.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/tpi"
)

func main() {
	var (
		circuit    = flag.String("circuit", "", "built-in circuit name")
		bench      = flag.String("bench", "", "path to a .bench netlist")
		k          = flag.Int("k", 4, "number of observation points to insert")
		greedy     = flag.Bool("greedy", false, "exact greedy selection (slower; measures every candidate)")
		candidates = flag.Int("candidates", 8, "candidates measured per greedy round")
		out        = flag.String("o", "", "write the modified circuit as .bench to this file")
	)
	flag.Parse()

	c, err := loadCircuit(*circuit, *bench)
	if err != nil {
		fatal(err)
	}
	var plan tpi.Plan
	if *greedy {
		plan, err = tpi.GreedyExact(c, *k, *candidates)
	} else {
		plan, err = tpi.CenterHeuristic(c, *k)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit: %s\n", c)
	for _, name := range plan.Names {
		fmt.Println("observation point:", name)
	}
	fmt.Printf("mean detectability of checkpoint faults: %.4f -> %.4f (%+.1f%%)\n",
		plan.Before, plan.After, 100*plan.Gain())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := plan.Circuit.WriteBench(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func loadCircuit(name, bench string) (*netlist.Circuit, error) {
	switch {
	case name != "" && bench != "":
		return nil, fmt.Errorf("pass either -circuit or -bench, not both")
	case name != "":
		return circuits.Get(name)
	case bench != "":
		f, err := os.Open(bench)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(bench, f)
	default:
		return nil, fmt.Errorf("pass -circuit <name> or -bench <file>")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpi:", err)
	os.Exit(1)
}
