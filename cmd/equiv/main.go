// Command equiv is a combinational equivalence checker over `.bench`
// netlists (or built-in circuits), built on the OBDD engine: it proves
// equivalence or prints a counterexample vector.
//
// Usage:
//
//	equiv -a c499s -b c1355s               # built-ins by name
//	equiv -a left.bench -b right.bench     # files (detected by extension)
//	equiv -a c1355s -b c1355s -optimize-b  # check the optimizer's work
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/circuits"
	"repro/internal/equiv"
	"repro/internal/netlist"
)

func main() {
	var (
		aRef = flag.String("a", "", "first circuit: built-in name or .bench path")
		bRef = flag.String("b", "", "second circuit: built-in name or .bench path")
		optA = flag.Bool("optimize-a", false, "optimize the first circuit before checking")
		optB = flag.Bool("optimize-b", false, "optimize the second circuit before checking")
	)
	flag.Parse()
	if *aRef == "" || *bRef == "" {
		fatal(fmt.Errorf("pass -a and -b"))
	}
	a, err := load(*aRef)
	if err != nil {
		fatal(err)
	}
	b, err := load(*bRef)
	if err != nil {
		fatal(err)
	}
	if *optA {
		a = a.Optimize()
	}
	if *optB {
		b = b.Optimize()
	}
	fmt.Printf("a: %s\nb: %s\n", a, b)
	r := equiv.Check(a, b)
	switch {
	case r.Equivalent:
		fmt.Println("EQUIVALENT (proved over all inputs)")
	case r.Reason != "":
		fmt.Println("NOT COMPARABLE:", r.Reason)
		os.Exit(1)
	default:
		fmt.Printf("NOT EQUIVALENT at output %d (%s)\n", r.FailingOutput, a.OutputNames()[r.FailingOutput])
		line := make([]byte, len(r.Counterexample))
		for i, v := range r.Counterexample {
			line[i] = '0'
			if v {
				line[i] = '1'
			}
		}
		fmt.Printf("counterexample (%v): %s\n", a.InputNames(), line)
		os.Exit(1)
	}
}

func load(ref string) (*netlist.Circuit, error) {
	if strings.HasSuffix(ref, ".bench") {
		f, err := os.Open(ref)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(ref, f)
	}
	return circuits.Get(ref)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "equiv:", err)
	os.Exit(1)
}
