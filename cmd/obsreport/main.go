// Command obsreport turns flight-recorder dumps (the -flight flag of
// diffprop and figures) into a markdown post-mortem report: throughput
// curve, outcome breakdown, per-worker utilization, rescue-ladder
// effectiveness, the most expensive faults, checkpoint I/O health, a
// chaos audit correlating every injection with the records it produced,
// and anomaly flags.
//
// Usage:
//
//	obsreport run.flight.json                        # report to stdout
//	obsreport -out report.md run1.flight.json run2.flight.json
//	obsreport -checkpoint run.jsonl -trace run.trace run.flight.json
//	obsreport -verify-chaos storm.flight.json        # exit 3 unless every
//	                                                 # injection correlates
//
// Multiple dump files are a kill-and-resume sequence in run order: the
// report reconstructs the full event history and flags any fault indices
// lost or analyzed twice across the runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/postmortem"
)

func main() {
	var (
		ckptPath    = flag.String("checkpoint", "", "checkpoint JSONL file to cross-check record counts against")
		tracePath   = flag.String("trace", "", "JSONL trace file to resolve fault names from (chrome format is not supported)")
		outPath     = flag.String("out", "", "write the markdown report here instead of stdout")
		topN        = flag.Int("top", 10, "size of the most-expensive-faults table")
		verifyChaos = flag.Bool("verify-chaos", false, "exit 3 unless at least one chaos injection was recorded and every one correlates with the records it produced (skipped if the flight ring wrapped)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "obsreport: no flight dump files given (usage: obsreport [flags] run.flight.json ...)")
		os.Exit(2)
	}

	dumps := make([]*obs.FlightDump, 0, flag.NArg())
	for _, path := range flag.Args() {
		d, err := obs.ReadFlightDump(path)
		if err != nil {
			fatal(err)
		}
		dumps = append(dumps, d)
	}

	opts := postmortem.Options{TopN: *topN}
	if *tracePath != "" {
		names, err := loadTraceNames(*tracePath)
		if err != nil {
			fatal(err)
		}
		opts.FaultNames = names
	}
	if *ckptPath != "" {
		hdr, records, _, err := analysis.LoadCheckpoint(*ckptPath)
		if err != nil {
			fatal(err)
		}
		opts.Checkpoint = &postmortem.CheckpointInfo{
			Kind:    hdr.Kind,
			Circuit: hdr.Circuit,
			Faults:  hdr.Faults,
			Records: len(records),
		}
	}

	rep, err := postmortem.Analyze(dumps, opts)
	if err != nil {
		fatal(err)
	}

	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(rep.Markdown), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "obsreport: wrote %s\n", *outPath)
	} else {
		fmt.Print(rep.Markdown)
	}

	if *verifyChaos {
		switch {
		case rep.EventsDropped > 0:
			fmt.Fprintf(os.Stderr, "obsreport: chaos verification skipped: the flight ring wrapped (%d events dropped)\n", rep.EventsDropped)
		case rep.ChaosInjected == 0:
			fmt.Fprintln(os.Stderr, "obsreport: chaos verification failed: no chaos injections recorded")
			os.Exit(3)
		case rep.ChaosUncorrelated > 0:
			fmt.Fprintf(os.Stderr, "obsreport: chaos verification failed: %d of %d injections uncorrelated\n", rep.ChaosUncorrelated, rep.ChaosInjected)
			os.Exit(3)
		default:
			fmt.Fprintf(os.Stderr, "obsreport: chaos verification OK: all %d injections correlated\n", rep.ChaosInjected)
		}
	}
}

// loadTraceNames digests a JSONL trace into a fault-index → fault-name
// map. Only the jsonl trace format carries one span per line; a chrome
// trace (a single JSON array) is rejected with a hint.
func loadTraceNames(path string) (map[int]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	names := make(map[int]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first && strings.HasPrefix(line, "[") {
			return nil, fmt.Errorf("obsreport: %s looks like a chrome-format trace; fault names need -traceformat jsonl", path)
		}
		first = false
		var ev struct {
			Index int    `json:"i"`
			Fault string `json:"fault"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // tolerate a torn tail like the checkpoint loader does
		}
		if ev.Fault != "" {
			names[ev.Index] = ev.Fault
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return names, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsreport:", err)
	os.Exit(1)
}
