// Command benchgen emits the built-in benchmark circuits as ISCAS-85
// `.bench` netlists and prints catalog statistics.
//
// Usage:
//
//	benchgen -list                  # catalog table
//	benchgen -circuit c499s         # netlist to stdout
//	benchgen -all -out bench/       # write every circuit to a directory
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/circuits"
	"repro/internal/report"
)

func main() {
	var (
		list    = flag.Bool("list", false, "print the catalog with statistics")
		circuit = flag.String("circuit", "", "emit one circuit's netlist to stdout")
		all     = flag.Bool("all", false, "emit every circuit (requires -out)")
		out     = flag.String("out", "", "output directory for -all")
		dot     = flag.Bool("dot", false, "with -circuit, emit Graphviz DOT instead of .bench")
	)
	flag.Parse()

	switch {
	case *list:
		printCatalog()
	case *circuit != "":
		c, err := circuits.Get(*circuit)
		if err != nil {
			fatal(err)
		}
		if *dot {
			fmt.Print(c.DOT())
			return
		}
		if err := c.WriteBench(os.Stdout); err != nil {
			fatal(err)
		}
	case *all:
		if *out == "" {
			fatal(fmt.Errorf("-all requires -out <dir>"))
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, name := range circuits.Names() {
			c, err := circuits.Get(name)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, name+".bench")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := c.WriteBench(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printCatalog() {
	t := report.Table{
		Title:   "benchmark catalog (stand-ins documented in DESIGN.md §3)",
		Columns: []string{"name", "paper circuit", "PIs", "POs", "gates", "depth", "description"},
	}
	for _, e := range circuits.Catalog() {
		c, err := circuits.Get(e.Name)
		if err != nil {
			fatal(err)
		}
		t.Rows = append(t.Rows, []string{
			e.Name, e.PaperName,
			fmt.Sprintf("%d", len(c.Inputs)),
			fmt.Sprintf("%d", len(c.Outputs)),
			fmt.Sprintf("%d", c.NumGates()),
			fmt.Sprintf("%d", c.Depth()),
			e.Description,
		})
	}
	fmt.Println(t.Text())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
