// Command atpg generates a complete deterministic stuck-at test set for a
// circuit using Difference Propagation: every testable fault is covered
// (verified by independent fault simulation), every untestable fault is
// proven redundant, and the set is compacted by greedy set cover.
//
// Usage:
//
//	atpg -circuit alu181                 # vectors to stdout
//	atpg -circuit c95s -report           # coverage report, incl. bridging
//	atpg -bench my.bench -seed 7 -o t.vec
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "built-in circuit name")
		bench   = flag.String("bench", "", "path to a .bench netlist")
		seed    = flag.Int64("seed", 1990, "don't-care fill seed")
		out     = flag.String("o", "", "write vectors to this file instead of stdout")
		report  = flag.Bool("report", false, "print a coverage report (stuck-at and bridging)")
	)
	flag.Parse()

	c, err := loadCircuit(*circuit, *bench)
	if err != nil {
		fatal(err)
	}
	e, err := diffprop.New(c, nil)
	if err != nil {
		fatal(err)
	}
	w := e.Circuit
	fs := faults.CheckpointStuckAts(w)
	gen := atpg.GenerateStuckAt(e, fs, *seed)
	vectors := atpg.Compact(e, fs, gen.Vectors)

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriter(dst)
	fmt.Fprintf(bw, "# %s: %d vectors for %d collapsed checkpoint faults (%d proven redundant)\n",
		w.Name, len(vectors), len(fs), len(gen.Redundant))
	fmt.Fprintf(bw, "# inputs: %v\n", w.InputNames())
	for _, v := range vectors {
		line := make([]byte, len(v))
		for i, b := range v {
			line[i] = '0'
			if b {
				line[i] = '1'
			}
		}
		fmt.Fprintf(bw, "%s\n", line)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}

	for _, f := range gen.Redundant {
		fmt.Fprintf(os.Stderr, "redundant: %s\n", f.Describe(w))
	}
	if *report {
		p := simulate.FromVectors(len(w.Inputs), vectors)
		sa := simulate.CoverageStuckAt(w, fs, p)
		fmt.Fprintf(os.Stderr, "stuck-at coverage: %d/%d (%.2f%%)\n", sa.Detected, sa.Total, 100*sa.Coverage())
		for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
			bs := faults.AllNFBFs(w, kind)
			if len(bs) > 3000 {
				bs = bs[:3000]
			}
			bc := simulate.CoverageBridging(w, bs, p)
			fmt.Fprintf(os.Stderr, "%v coverage: %d/%d (%.2f%%)\n", kind, bc.Detected, bc.Total, 100*bc.Coverage())
		}
	}
}

func loadCircuit(name, bench string) (*netlist.Circuit, error) {
	switch {
	case name != "" && bench != "":
		return nil, fmt.Errorf("pass either -circuit or -bench, not both")
	case name != "":
		return circuits.Get(name)
	case bench != "":
		f, err := os.Open(bench)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(bench, f)
	default:
		return nil, fmt.Errorf("pass -circuit <name> or -bench <file>")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atpg:", err)
	os.Exit(1)
}
