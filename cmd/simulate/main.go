// Command simulate fault-simulates a test-vector file against a circuit
// and reports stuck-at (and optionally bridging) coverage, using either
// the 64-way bit-parallel engine or the deductive (one pass, all faults)
// engine — and checks that the two agree when asked.
//
// Usage:
//
//	atpg -circuit alu181 -o t.vec
//	simulate -circuit alu181 -vectors t.vec
//	simulate -circuit alu181 -vectors t.vec -engine deductive -bridging
//	simulate -circuit c95s -vectors t.vec -engine both   # cross-check
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

func main() {
	var (
		circuit  = flag.String("circuit", "", "built-in circuit name")
		bench    = flag.String("bench", "", "path to a .bench netlist")
		vectors  = flag.String("vectors", "", "test vector file (one 0/1 vector per line)")
		engine   = flag.String("engine", "bitparallel", "bitparallel, deductive, or both")
		bridging = flag.Bool("bridging", false, "also report bridging fault coverage")
		decomp   = flag.Bool("decompose", true, "fault-model the two-input decomposition (as the analyses do)")
	)
	flag.Parse()

	c, err := loadCircuit(*circuit, *bench)
	if err != nil {
		fatal(err)
	}
	if *decomp {
		c = c.Decompose2()
	}
	if *vectors == "" {
		fatal(fmt.Errorf("pass -vectors <file>"))
	}
	f, err := os.Open(*vectors)
	if err != nil {
		fatal(err)
	}
	vecs, err := simulate.ReadVectors(f, len(c.Inputs))
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d vectors\n", c, len(vecs))

	fs := faults.CheckpointStuckAts(c)
	var bit, ded simulate.CoverageResult
	runBit := *engine == "bitparallel" || *engine == "both"
	runDed := *engine == "deductive" || *engine == "both"
	if !runBit && !runDed {
		fatal(fmt.Errorf("unknown engine %q (bitparallel, deductive, both)", *engine))
	}
	if runBit {
		bit = simulate.CoverageStuckAt(c, fs, simulate.FromVectors(len(c.Inputs), vecs))
		fmt.Printf("bit-parallel: stuck-at coverage %d/%d (%.2f%%)\n", bit.Detected, bit.Total, 100*bit.Coverage())
	}
	if runDed {
		ded = simulate.DeductiveCoverage(c, fs, vecs)
		fmt.Printf("deductive:    stuck-at coverage %d/%d (%.2f%%)\n", ded.Detected, ded.Total, 100*ded.Coverage())
	}
	if runBit && runDed {
		if bit.Detected != ded.Detected {
			fatal(fmt.Errorf("engines disagree: %d vs %d", bit.Detected, ded.Detected))
		}
		fmt.Println("engines agree")
	}
	if *bridging {
		p := simulate.FromVectors(len(c.Inputs), vecs)
		for _, kind := range []faults.BridgeKind{faults.WiredAND, faults.WiredOR} {
			bs := faults.AllNFBFs(c, kind)
			if len(bs) > 5000 {
				bs = bs[:5000]
				fmt.Printf("(%v truncated to 5000 faults)\n", kind)
			}
			cov := simulate.CoverageBridging(c, bs, p)
			fmt.Printf("%v coverage %d/%d (%.2f%%)\n", kind, cov.Detected, cov.Total, 100*cov.Coverage())
		}
	}
}

func loadCircuit(name, bench string) (*netlist.Circuit, error) {
	switch {
	case name != "" && bench != "":
		return nil, fmt.Errorf("pass either -circuit or -bench, not both")
	case name != "":
		return circuits.Get(name)
	case bench != "":
		f, err := os.Open(bench)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(bench, f)
	default:
		return nil, fmt.Errorf("pass -circuit <name> or -bench <file>")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
