// Command figures regenerates every table and figure of the paper's
// evaluation section (Table 1, Figures 1-8) and the quantified prose
// claims (X1-X4) as plain-text reports and optional CSV files.
//
// Usage:
//
//	figures                         # everything, paper-scale configuration
//	figures -quick                  # small circuits, small samples (smoke run)
//	figures -fig fig3               # one exhibit
//	figures -csv out/               # also write one CSV per exhibit
//	figures -maxbfs 200 -seed 7     # tune the bridging fault sampling
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/diffprop"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
)

// shutdownObs flushes the trace file, stops the timeline sampler and the
// debug server; dumpFlight writes the -flight post-mortem dump. Both are
// armed by setupObs, idempotent, and no-ops when their flags are unset
// (fatal exits through os.Exit, so defers cannot be relied on).
var (
	shutdownObs = func() {}
	dumpFlight  = func(reason string) {}
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "use the small smoke-test configuration")
		figID      = flag.String("fig", "all", "exhibit to produce: table1, fig1..fig8, x1..x4, or all")
		csvDir     = flag.String("csv", "", "directory to write per-exhibit CSV files into")
		maxBFs     = flag.Int("maxbfs", 0, "override the bridging fault sample ceiling")
		seed       = flag.Int64("seed", 0, "override the sampling seed")
		theta      = flag.Float64("theta", 0, "override the exponential distance parameter")
		bins       = flag.Int("bins", 0, "override the histogram bin count")
		circuits   = flag.String("circuits", "", "comma-separated circuit list for the trend figures")
		workers    = flag.Int("workers", 0, "parallel analysis workers per campaign (0 = one per CPU)")
		order      = flag.String("order", "index", "fault dispatch order per campaign: index, cone, level (results are bit-identical under any policy)")
		fullScan   = flag.Bool("fullscan", false, "use the full-gate-scan propagation reference instead of the cone-restricted worklist (bit-identical differential baseline)")
		verbose    = flag.Bool("v", false, "stream per-campaign progress and runtime stats to stderr")
		budget     = flag.Int64("budget", 0, "per-fault BDD operation budget (0 = unlimited); blown faults degrade to simulation estimates")
		timeout    = flag.Duration("timeout", 0, "per-fault wall-clock budget (0 = unlimited)")
		nodeLimit  = flag.Int("nodelimit", 0, "per-fault BDD node-count watermark (0 = unlimited); a tripped analysis enters the recovery ladder")
		gcAuto     = flag.Bool("gcauto", false, "enable recovery sifting when post-GC node counts still exceed -nodelimit (defaults -nodelimit to 1Mi nodes if unset)")
		retryMult  = flag.Float64("retrybudget", 0, "retry a blown fault once under its budgets scaled by this multiplier before degrading (<=1 disables)")
		memLimit   = flag.String("memlimit", "", "per-campaign heap ceiling, e.g. 2GiB: park workers near it instead of OOMing (empty = GOMEMLIMIT if set; off = never)")
		calibrate  = flag.Bool("calibrate", false, "self-calibrate each campaign's per-fault budget and retry ladder from the circuit's measured op-cost distribution")
		httpAddr   = flag.String("http", "", "serve the debug endpoints (/metrics, /progress, /debug/pprof) on this address, e.g. :6060")
		logLevel   = flag.String("log", "", "structured logging level on stderr: debug, info, warn, error (empty = off)")
		logJSON    = flag.Bool("logjson", false, "emit structured logs as JSON instead of logfmt text")
		tracePath  = flag.String("trace", "", "write a per-fault span trace covering every campaign to this file")
		traceFmt   = flag.String("traceformat", "jsonl", "trace file format: jsonl, chrome (chrome://tracing)")
		flightPath = flag.String("flight", "", "record campaign events in a flight ring and dump them as JSON to this file on exit or error (analyze with cmd/obsreport)")
		shards     = flag.Int("shards", 0, "run each catalog-circuit campaign under the crash-tolerant process supervisor with this many worker shards (needs -diffprop; see internal/supervise)")
		workerBin  = flag.String("diffprop", "", "path to the diffprop binary supervised -shards campaigns exec (it re-executes itself as the shard workers)")
		shardDir   = flag.String("sharddir", "", "directory for supervised campaigns' merged and per-shard checkpoints (default: a temporary directory, removed on success; set it to keep and resume them)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *maxBFs > 0 {
		cfg.MaxBFs = *maxBFs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *theta > 0 {
		cfg.Theta = *theta
	}
	if *bins > 0 {
		cfg.Bins = *bins
	}
	if *circuits != "" {
		cfg.Circuits = strings.Split(*circuits, ",")
	}
	cfg.Workers = *workers
	cfg.FaultOps = *budget
	cfg.FaultTimeout = *timeout
	cfg.Recovery = diffprop.Recovery{
		NodeLimit:       *nodeLimit,
		RetryMultiplier: *retryMult,
	}
	if *gcAuto {
		cfg.Recovery.SiftPasses = diffprop.DefaultSiftPasses
		if cfg.Recovery.NodeLimit == 0 {
			cfg.Recovery.NodeLimit = 1 << 20
		}
	}
	mem, err := analysis.ParseMemLimit(*memLimit)
	if err != nil {
		fatal(fmt.Errorf("-memlimit: %w", err))
	}
	cfg.MemLimit = mem
	cfg.Calibrate = analysis.Calibration{Enabled: *calibrate}
	cfg.Order, err = analysis.ParseOrderPolicy(*order)
	if err != nil {
		fatal(fmt.Errorf("-order: %w", err))
	}
	cfg.FullScan = *fullScan
	var cleanupShards = func() {}
	if *shards > 0 {
		if *workerBin == "" {
			fatal(fmt.Errorf("-shards needs -diffprop <binary> (the supervised worker executable)"))
		}
		cfg.Shards = *shards
		cfg.WorkerBinary = *workerBin
		cfg.ShardDir = *shardDir
		if cfg.ShardDir == "" {
			dir, err := os.MkdirTemp("", "figures-shards-")
			if err != nil {
				fatal(err)
			}
			cfg.ShardDir = dir
			// Removed on success only: after a fatal exit the checkpoints
			// are what -sharddir reruns resume from.
			cleanupShards = func() { os.RemoveAll(dir) }
		}
	}
	cfg.Obs = setupObs(*httpAddr, *logLevel, *logJSON, *tracePath, *traceFmt, *flightPath)
	if *verbose {
		cfg.Progress = func(circuit string, done, total int) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d faults", circuit, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	r := experiments.NewRunner(cfg)

	var exhibits []experiments.Exhibit
	if *figID == "all" {
		var err error
		exhibits, err = r.All()
		if err != nil {
			fatal(err)
		}
	} else {
		ex, err := one(r, *figID)
		if err != nil {
			fatal(err)
		}
		exhibits = []experiments.Exhibit{ex}
	}

	for _, ex := range exhibits {
		fmt.Println(ex.Text)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, ex.ID+".csv")
			if err := os.WriteFile(path, []byte(ex.CSV), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	cleanupShards()
	dumpFlight("completed")
	shutdownObs()
}

func one(r *experiments.Runner, id string) (experiments.Exhibit, error) {
	if id == "table1" {
		t := r.Table1()
		return experiments.Exhibit{ID: id, Text: t.Text(), CSV: t.CSV()}, nil
	}
	figs := map[string]func() (report.Figure, error){
		"fig1": r.Fig1, "fig2": r.Fig2, "fig3": r.Fig3, "fig4": r.Fig4,
		"fig5": r.Fig5, "fig6": r.Fig6, "fig7": r.Fig7, "fig8": r.Fig8,
	}
	if fn, ok := figs[id]; ok {
		f, err := fn()
		if err != nil {
			return experiments.Exhibit{}, err
		}
		return experiments.Exhibit{ID: id, Text: f.Text(), CSV: f.CSV()}, nil
	}
	tables := map[string]func() (report.Table, error){
		"x1": r.X1, "x2": r.X2, "x3": r.X3, "x4": r.X4, "x5": r.X5, "x6": r.X6, "x7": r.X7, "x8": r.X8, "x9": r.X9, "x10": r.X10, "x11": r.X11, "x12": r.X12, "summary": r.Summary,
	}
	if fn, ok := tables[id]; ok {
		t, err := fn()
		if err != nil {
			return experiments.Exhibit{}, err
		}
		return experiments.Exhibit{ID: id, Text: t.Text(), CSV: t.CSV()}, nil
	}
	return experiments.Exhibit{}, fmt.Errorf("unknown exhibit %q (table1, fig1..fig8, x1..x12, summary, all)", id)
}

// setupObs builds the observer shared by every campaign the runner
// launches and arms shutdownObs plus dumpFlight. Returns nil (the
// zero-overhead off state) when no observability flag is set. The
// timeline sampler runs whenever the flight recorder or the debug server
// wants it (the /timeline endpoint and the dump embed it).
func setupObs(httpAddr, logLevel string, logJSON bool, tracePath, traceFmt, flightPath string) *obs.Observer {
	if httpAddr == "" && logLevel == "" && tracePath == "" && flightPath == "" {
		return nil
	}
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	if flightPath != "" {
		o.Flight = obs.NewFlightRecorder(0)
	}
	var timeline *obs.Timeline
	if flightPath != "" || httpAddr != "" {
		timeline = o.StartTimeline(0, 0)
	}
	if logLevel != "" {
		lv, err := obs.ParseLevel(logLevel)
		if err != nil {
			fatal(err)
		}
		o.Log = obs.NewLogger(os.Stderr, lv, logJSON)
	}
	var traceFile *os.File
	if tracePath != "" {
		format, err := obs.ParseTraceFormat(traceFmt)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		o.Tracer = obs.NewTracer(f, format)
	}
	var srv *obs.Server
	if httpAddr != "" {
		o.Metrics.PublishExpvar("figures")
		s, err := obs.Serve(httpAddr, o)
		if err != nil {
			fatal(err)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "figures: debug server on http://%s (/metrics /progress /debug/pprof)\n", s.Addr())
	}
	var once sync.Once
	shutdownObs = func() {
		once.Do(func() {
			timeline.Stop()
			if o.Tracer != nil {
				if err := o.Tracer.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "figures: closing trace: %v\n", err)
				}
			}
			if traceFile != nil {
				traceFile.Close()
			}
			if srv != nil {
				srv.Close()
			}
		})
	}
	if flightPath != "" {
		var dumpOnce sync.Once
		dumpFlight = func(reason string) {
			dumpOnce.Do(func() {
				// Freeze the timeline first so the dump's final sample covers
				// the run's tail.
				timeline.Stop()
				if ok, err := o.WriteFlightDump(flightPath, "figures", reason); err != nil {
					fmt.Fprintf(os.Stderr, "figures: writing flight dump: %v\n", err)
				} else if ok {
					fmt.Fprintf(os.Stderr, "figures: wrote flight dump (%s) to %s\n", reason, flightPath)
				}
			})
		}
	}
	return o
}

func fatal(err error) {
	dumpFlight("error")
	shutdownObs()
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
