package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// diffpropBin is the real diffprop binary the integration tests exec —
// both directly and, through -shards, as a self-re-executing supervisor.
// Empty when the build failed (tests skip).
var diffpropBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "diffprop-test-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "diffprop")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "shard_test: building diffprop: %v\n%s", err, out)
	} else {
		diffpropBin = bin
	}
	os.Exit(m.Run())
}

// runDiffprop execs the binary and returns stdout, stderr and exit code.
func runDiffprop(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	if diffpropBin == "" {
		t.Skip("diffprop binary unavailable (go build failed in TestMain)")
	}
	cmd := exec.Command(diffpropBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec %v: %v", args, err)
	}
	return stdout.String(), stderr.String(), code
}

// checkpointRecords loads a checkpoint's record lines keyed by fault
// index, raw bytes preserved for bit-identity comparison.
func checkpointRecords(t *testing.T, path string) map[int]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs := make(map[int]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	first := true
	for sc.Scan() {
		if first {
			first = false // header
			continue
		}
		var line struct {
			Index  int             `json:"i"`
			Record json.RawMessage `json:"r"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("%s: %v: %s", path, err, sc.Bytes())
		}
		recs[line.Index] = string(line.Record)
	}
	return recs
}

// identicalExcept asserts got == want record-for-record, byte-for-byte,
// for every index not in skip.
func identicalExcept(t *testing.T, got, want map[int]string, skip map[int]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record counts differ: %d vs %d", len(got), len(want))
	}
	for i, w := range want {
		if skip[i] {
			continue
		}
		if got[i] != w {
			t.Errorf("record %d differs:\n  supervised:   %s\n  unsupervised: %s", i, got[i], w)
		}
	}
}

// singleProcessRun produces the unsupervised reference checkpoint once
// per test that needs it.
func singleProcessRun(t *testing.T) map[int]string {
	t.Helper()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "single.jsonl")
	_, stderr, code := runDiffprop(t, "-circuit", "c17", "-checkpoint", ckpt, "-summary")
	if code != 0 {
		t.Fatalf("single-process run exited %d:\n%s", code, stderr)
	}
	return checkpointRecords(t, ckpt)
}

func TestSupervisedBitIdenticalToSingleProcess(t *testing.T) {
	want := singleProcessRun(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sharded.jsonl")
	stdout, stderr, code := runDiffprop(t, "-circuit", "c17", "-shards", "3", "-checkpoint", ckpt, "-summary")
	if code != 0 {
		t.Fatalf("supervised run exited %d:\n%s", code, stderr)
	}
	identicalExcept(t, checkpointRecords(t, ckpt), want, nil)
	if !strings.Contains(stdout, "faults: 18") {
		t.Errorf("supervised summary missing fault count:\n%s", stdout)
	}
	// The merged checkpoint must resume cleanly in an ordinary
	// unsupervised run: nothing left to analyze.
	_, stderr, code = runDiffprop(t, "-circuit", "c17", "-checkpoint", ckpt, "-resume", "-summary")
	if code != 0 || !strings.Contains(stderr, "18 of 18 faults already analyzed") {
		t.Fatalf("merged checkpoint did not resume cleanly (exit %d):\n%s", code, stderr)
	}
}

func TestKillStormStaysBitIdentical(t *testing.T) {
	want := singleProcessRun(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "storm.jsonl")
	// Every worker dies at some fault on its first attempt (one-shot
	// points are attempt-gated, so restarts converge).
	_, stderr, code := runDiffprop(t,
		"-circuit", "c17", "-shards", "3", "-checkpoint", ckpt,
		"-chaos", "seed=7;workerkill:p=0.5", "-summary")
	if code != 0 {
		t.Fatalf("kill-storm run exited %d:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "worker death(s)") {
		t.Fatalf("kill storm killed nobody; chaos wiring broken:\n%s", stderr)
	}
	identicalExcept(t, checkpointRecords(t, ckpt), want, nil)
}

func TestPoisonFaultQuarantined(t *testing.T) {
	want := singleProcessRun(t)
	const poison = 7
	run := func(dir string) (map[int]string, string) {
		ckpt := filepath.Join(dir, "poison.jsonl")
		_, stderr, code := runDiffprop(t,
			"-circuit", "c17", "-shards", "3", "-checkpoint", ckpt,
			"-chaos", fmt.Sprintf("workerkill:i=%d,rep=1", poison),
			"-max-restarts", "1", "-summary")
		// Exit 2: campaign completed, with per-fault errors — the
		// quarantined record. Never exit 1 (a failed campaign).
		if code != 2 {
			t.Fatalf("poison run exited %d, want 2:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "quarantined") {
			t.Fatalf("no quarantine reported:\n%s", stderr)
		}
		return checkpointRecords(t, ckpt), stderr
	}
	got, _ := run(t.TempDir())
	identicalExcept(t, got, want, map[int]bool{poison: true})
	var rec struct {
		Err string
	}
	if err := json.Unmarshal([]byte(got[poison]), &rec); err != nil || !strings.Contains(rec.Err, "quarantined") {
		t.Fatalf("poison record = %s (%v), want quarantine Err", got[poison], err)
	}
	// Quarantine must be reproducible: a rerun isolates the same fault
	// with the bit-identical record.
	again, _ := run(t.TempDir())
	identicalExcept(t, again, got, nil)
}

func TestWorkerExitsOrphanedOnStdinEOF(t *testing.T) {
	if diffpropBin == "" {
		t.Skip("diffprop binary unavailable")
	}
	dir := t.TempDir()
	cmd := exec.Command(diffpropBin,
		"-circuit", "c17", "-worker-shard", "0-6",
		"-checkpoint", filepath.Join(dir, "w.jsonl"))
	cmd.Stdin = nil // stdin at EOF from the start: instantly orphaned
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 4 {
		t.Fatalf("orphaned worker exited %v, want exit 4; stderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "supervisor is gone") {
		t.Fatalf("orphan exit not explained:\n%s", stderr.String())
	}
}

func TestSupervisorFlagValidation(t *testing.T) {
	_, stderr, code := runDiffprop(t, "-circuit", "c17", "-shards", "2")
	if code != 1 || !strings.Contains(stderr, "-checkpoint") {
		t.Fatalf("-shards without -checkpoint: exit %d, stderr:\n%s", code, stderr)
	}
	_, stderr, code = runDiffprop(t, "-circuit", "c17", "-shards", "2", "-worker-shard", "0-3", "-checkpoint", "x.jsonl")
	if code != 1 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("-shards with -worker-shard: exit %d, stderr:\n%s", code, stderr)
	}
}
