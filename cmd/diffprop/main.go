// Command diffprop runs exact Difference Propagation fault analysis on a
// single circuit and prints a per-fault report: exact detectability,
// syndrome/excitation bound, adherence, observable outputs, and one
// extracted test vector per detectable fault.
//
// Usage:
//
//	diffprop -circuit alu181                  # collapsed checkpoint stuck-ats
//	diffprop -circuit c95s -model and         # wired-AND bridging faults
//	diffprop -bench my.bench -model or -max 50
//	diffprop -circuit c17 -summary            # aggregates only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/report"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "built-in circuit name (see cmd/benchgen -list)")
		bench   = flag.String("bench", "", "path to an ISCAS-85 .bench netlist")
		model   = flag.String("model", "stuckat", "fault model: stuckat, and, or")
		max     = flag.Int("max", 0, "analyze at most this many faults (0 = all)")
		maxBFs  = flag.Int("maxbfs", 1000, "bridging fault sample ceiling")
		theta   = flag.Float64("theta", 0.3, "exponential distance parameter for sampling")
		seed    = flag.Int64("seed", 1990, "sampling seed")
		summary = flag.Bool("summary", false, "print aggregates only")
		dotOut  = flag.String("dot", "", "write the first analyzed fault's complete-test-set BDD as Graphviz DOT to this file")
		workers = flag.Int("workers", 1, "parallel analysis workers (0 = one per CPU)")
		verbose = flag.Bool("v", false, "stream progress and campaign runtime stats to stderr")
	)
	flag.Parse()

	c, err := loadCircuit(*circuit, *bench)
	if err != nil {
		fatal(err)
	}
	e, err := diffprop.New(c, nil)
	if err != nil {
		fatal(err)
	}
	w := e.Circuit
	fmt.Printf("circuit: %s (analyzed as %d two-input gates, %d PIs, %d POs)\n\n",
		c, w.NumGates(), len(w.Inputs), len(w.Outputs))

	ccfg := analysis.CampaignConfig{Workers: *workers}
	if *verbose {
		ccfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d faults", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	switch strings.ToLower(*model) {
	case "stuckat", "sa":
		fs := faults.CheckpointStuckAts(w)
		if *max > 0 && len(fs) > *max {
			fs = fs[:*max]
		}
		study, err := analysis.RunStuckAtCampaign(c, nil, fs, ccfg)
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, study.Stats)
		}
		if *dotOut != "" && len(fs) > 0 {
			res := e.StuckAt(fs[0])
			dot := e.Manager().DOT(fs[0].Describe(w), res.Complete)
			if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (complete test set of %s)\n", *dotOut, fs[0].Describe(w))
		}
		if !*summary {
			printStuckAt(e, w, study)
		}
		fmt.Printf("faults: %d   detectable: %.1f%%   mean detectability (detectable): %.4f   observed==fed rate: %.3f\n",
			len(study.Records), 100*study.CoverageRate(), study.MeanDetectable(), study.ObservedEqualsFedRate())
		fmt.Printf("selective trace: %.1f of %d gates evaluated per fault on average\n",
			study.MeanGatesEvaluated(), w.NumGates())
	case "and", "or":
		kind := faults.WiredAND
		if strings.ToLower(*model) == "or" {
			kind = faults.WiredOR
		}
		set, pop, sampled := analysis.BridgingSet(w, kind, *maxBFs, *theta, *seed)
		if *max > 0 && len(set) > *max {
			set = set[:*max]
		}
		study, err := analysis.RunBridgingCampaign(c, nil, set, kind, pop, sampled, ccfg)
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, study.Stats)
		}
		if !*summary {
			printBridging(w, study)
		}
		fmt.Printf("faults: %d of %d potentially detectable NFBFs (sampled: %v)\n", len(study.Records), pop, sampled)
		fmt.Printf("detectable: %.1f%%   mean detectability (detectable): %.4f   stuck-at behavior: %.1f%%\n",
			100*study.CoverageRate(), study.MeanDetectable(), 100*study.StuckAtProportion())
	default:
		fatal(fmt.Errorf("unknown fault model %q (stuckat, and, or)", *model))
	}
}

func loadCircuit(name, bench string) (*netlist.Circuit, error) {
	switch {
	case name != "" && bench != "":
		return nil, fmt.Errorf("pass either -circuit or -bench, not both")
	case name != "":
		return circuits.Get(name)
	case bench != "":
		f, err := os.Open(bench)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(bench, f)
	default:
		return nil, fmt.Errorf("pass -circuit <name> or -bench <file>")
	}
}

func printStuckAt(e *diffprop.Engine, w *netlist.Circuit, study analysis.StuckAtStudy) {
	t := report.Table{
		Columns: []string{"fault", "detect", "bound", "adher", "POs obs/fed", "toPO", "test"},
	}
	for _, r := range study.Records {
		test := "(redundant)"
		if r.Detectable() {
			res := e.StuckAt(r.Fault)
			test = vectorString(e, res)
		}
		adher := "-"
		if r.AdherenceOK {
			adher = fmt.Sprintf("%.3f", r.Adherence)
		}
		t.Rows = append(t.Rows, []string{
			r.Fault.Describe(w),
			fmt.Sprintf("%.4f", r.Detectability),
			fmt.Sprintf("%.4f", r.UpperBound),
			adher,
			fmt.Sprintf("%d/%d", r.ObservedPOs, r.POsFed),
			fmt.Sprintf("%d", r.MaxLevelsToPO),
			test,
		})
	}
	fmt.Println(t.Text())
}

func printBridging(w *netlist.Circuit, study analysis.BridgingStudy) {
	t := report.Table{
		Columns: []string{"fault", "detect", "bound", "adher", "POs obs/fed", "stuck-at?"},
	}
	for _, r := range study.Records {
		adher := "-"
		if r.AdherenceOK {
			adher = fmt.Sprintf("%.3f", r.Adherence)
		}
		sa := ""
		if r.ActsStuckAt {
			sa = "yes"
		}
		t.Rows = append(t.Rows, []string{
			r.Fault.Describe(w),
			fmt.Sprintf("%.4f", r.Detectability),
			fmt.Sprintf("%.4f", r.UpperBound),
			adher,
			fmt.Sprintf("%d/%d", r.ObservedPOs, r.POsFed),
			sa,
		})
	}
	fmt.Println(t.Text())
}

// vectorString extracts one test from the complete test set and renders it
// in primary-input declaration order.
func vectorString(e *diffprop.Engine, res diffprop.Result) string {
	cube := e.Manager().AnySat(res.Complete)
	if cube == nil {
		return "(redundant)"
	}
	v2i := e.VarToInput()
	out := make([]byte, len(cube))
	for i := range out {
		out[i] = '-'
	}
	for v, s := range cube {
		if v2i[v] < 0 {
			continue
		}
		switch s {
		case 0:
			out[v2i[v]] = '0'
		case 1:
			out[v2i[v]] = '1'
		}
	}
	return string(out[:len(e.Circuit.Inputs)])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diffprop:", err)
	os.Exit(1)
}
