// Command diffprop runs exact Difference Propagation fault analysis on a
// single circuit and prints a per-fault report: exact detectability,
// syndrome/excitation bound, adherence, observable outputs, and one
// extracted test vector per detectable fault.
//
// Usage:
//
//	diffprop -circuit alu181                  # collapsed checkpoint stuck-ats
//	diffprop -circuit c95s -model and         # wired-AND bridging faults
//	diffprop -bench my.bench -model or -max 50
//	diffprop -circuit c17 -summary            # aggregates only
//	diffprop -circuit c1355s -budget 2000000 -timeout 5s   # degrade hard faults
//	diffprop -circuit c1908s -budget 200000 -gcauto -retrybudget 16   # rescue blown faults
//	diffprop -circuit c1908s -nodelimit 500000 -memlimit 2GiB        # bound memory, park workers
//	diffprop -circuit c1355s -checkpoint run.jsonl         # persist records
//	diffprop -circuit c1355s -checkpoint run.jsonl -resume # continue after a crash
//	diffprop -circuit c1355s -checkpoint run.jsonl -resume -retry-degraded  # re-attempt degraded faults
//	diffprop -circuit c1355s -http :6060 -log info         # live /metrics, /progress, pprof
//	diffprop -circuit c1355s -trace run.trace -traceformat chrome   # per-fault trace events
//
// An interrupt (Ctrl-C) cancels the campaign between faults: the partial
// study is reported, finished records stay in the checkpoint, and a later
// -resume run completes the set with bit-identical results. A second
// interrupt forces immediate exit (a wedged fault analysis cannot block
// the first, graceful cancellation).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/chaos"
	"repro/internal/circuits"
	"repro/internal/diffprop"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/supervise"
)

// shutdownObs flushes the trace file, stops the timeline sampler and the
// debug server. main exits through os.Exit on several paths, so fatal and
// finishCampaign call it explicitly; it is idempotent.
var shutdownObs = func() {}

// dumpFlight writes the flight recorder's post-mortem dump (the -flight
// flag). Armed by setupObs; idempotent — the first reason wins, so a
// panic's dump is not overwritten by the exit path's. A no-op when
// -flight is unset.
var dumpFlight = func(reason string) {}

func main() {
	var (
		circuit    = flag.String("circuit", "", "built-in circuit name (see cmd/benchgen -list)")
		bench      = flag.String("bench", "", "path to an ISCAS-85 .bench netlist")
		model      = flag.String("model", "stuckat", "fault model: stuckat, and, or")
		max        = flag.Int("max", 0, "analyze at most this many faults (0 = all)")
		maxBFs     = flag.Int("maxbfs", 1000, "bridging fault sample ceiling")
		theta      = flag.Float64("theta", 0.3, "exponential distance parameter for sampling")
		seed       = flag.Int64("seed", 1990, "sampling seed")
		summary    = flag.Bool("summary", false, "print aggregates only")
		dotOut     = flag.String("dot", "", "write the first analyzed fault's complete-test-set BDD as Graphviz DOT to this file")
		workers    = flag.Int("workers", 1, "parallel analysis workers (0 = one per CPU)")
		order      = flag.String("order", "index", "fault dispatch order: index (raw), cone (cluster by dominating output cone), level (by topological depth); results are bit-identical under any policy")
		fullScan   = flag.Bool("fullscan", false, "use the full-gate-scan propagation reference instead of the cone-restricted worklist (differential-testing baseline; results are bit-identical)")
		verbose    = flag.Bool("v", false, "stream progress and campaign runtime stats to stderr")
		budget     = flag.Int64("budget", 0, "per-fault BDD operation budget (0 = unlimited); blown faults degrade to simulation estimates")
		timeout    = flag.Duration("timeout", 0, "per-fault wall-clock budget (0 = unlimited)")
		nodeLimit  = flag.Int("nodelimit", 0, "per-fault BDD node-count watermark (0 = unlimited); a tripped analysis enters the recovery ladder")
		gcAuto     = flag.Bool("gcauto", false, "enable recovery sifting: reorder variables when post-GC node counts still exceed -nodelimit (defaults -nodelimit to 1Mi nodes if unset)")
		retryMult  = flag.Float64("retrybudget", 0, "retry a blown fault once under its budgets scaled by this multiplier before degrading (<=1 disables)")
		memLimit   = flag.String("memlimit", "", "campaign heap ceiling, e.g. 2GiB: park workers near it instead of OOMing (empty = GOMEMLIMIT if set; off = never)")
		estVectors = flag.Int("estvectors", 0, "random vectors behind each degraded estimate (0 = default)")
		ckptPath   = flag.String("checkpoint", "", "persist finished records to this JSONL file as they complete")
		resume     = flag.Bool("resume", false, "continue from the -checkpoint file, skipping already-persisted faults")
		retryDegr  = flag.Bool("retry-degraded", false, "with -resume: re-attempt checkpointed Approximate/error/skipped faults instead of carrying them forward")
		calibrate  = flag.Bool("calibrate", false, "self-calibrate the per-fault budget and retry ladder from the circuit's measured op-cost distribution (replaces hand-tuned -budget/-retrybudget)")
		calibJSON  = flag.String("calibjson", "", "write the final calibration state (armed budget, retry multiplier, updates) as JSON to this file")
		chaosSpec  = flag.String("chaos", "", "deterministic fault-injection spec, e.g. 'seed=7;budget:p=0.35;latency:p=0.2,d=2ms' (see internal/chaos)")
		httpAddr   = flag.String("http", "", "serve the debug endpoints (/metrics, /progress, /debug/pprof) on this address, e.g. :6060")
		logLevel   = flag.String("log", "", "structured logging level on stderr: debug, info, warn, error (empty = off)")
		logJSON    = flag.Bool("logjson", false, "emit structured logs as JSON instead of logfmt text")
		tracePath  = flag.String("trace", "", "stream one trace event per analyzed fault to this file")
		traceFmt   = flag.String("traceformat", "jsonl", "trace file format: jsonl, chrome (chrome://tracing)")
		flightPath = flag.String("flight", "", "record campaign events in a flight ring and dump them as JSON to this file on exit, panic, checkpoint failure or interrupt (convention: <checkpoint>.flight.json; analyze with cmd/obsreport)")

		shards     = flag.Int("shards", 0, "supervisor mode: partition the fault set into N shards, each analyzed by a supervised, restartable worker subprocess; merged results are bit-identical to an unsupervised run (needs -checkpoint)")
		shardProcs = flag.Int("shard-procs", 0, "supervisor: cap on concurrently running shard workers (0 = all shards at once)")
		shardDir   = flag.String("shard-dir", "", "supervisor: directory for per-shard checkpoints (default <checkpoint>.shards); rerunning over the same directory resumes them")
		hbTimeout  = flag.Duration("hb-timeout", supervise.DefaultHeartbeatTimeout, "supervisor: SIGKILL a worker after this much protocol silence and re-dispatch its shard")
		maxRestart = flag.Int("max-restarts", supervise.DefaultMaxRestarts, "supervisor: per-shard worker restarts before bisecting toward poison-fault quarantine (-1 = escalate on the first death)")
		workerBin  = flag.String("worker-binary", "", "supervisor: worker executable (default: this binary re-executed)")

		workerShard   = flag.String("worker-shard", "", "internal: run as a shard worker over global faults lo-hi; the supervisor owns stdout (JSONL protocol) and stdin (orphan watchdog)")
		workerAttempt = flag.Int("worker-attempt", 0, "internal: this worker's restart attempt (gates one-shot chaos process points)")
		workerHB      = flag.Duration("worker-hb", time.Second, "internal: worker heartbeat period")
	)
	flag.Parse()

	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume needs -checkpoint <file>"))
	}
	if *retryDegr && !*resume {
		fatal(fmt.Errorf("-retry-degraded needs -resume (it re-attempts faults restored from the checkpoint)"))
	}
	if *workerShard != "" && *shards > 0 {
		fatal(fmt.Errorf("-worker-shard and -shards are mutually exclusive (one process is either a worker or its supervisor)"))
	}
	if (*workerShard != "" || *shards > 0) && *ckptPath == "" {
		fatal(fmt.Errorf("-shards/-worker-shard need -checkpoint <file>"))
	}
	if *shards > 0 && *resume {
		fmt.Fprintln(os.Stderr, "diffprop: note: -resume is implicit under -shards (per-shard checkpoints in -shard-dir resume automatically)")
	}
	memCeiling, err := analysis.ParseMemLimit(*memLimit)
	if err != nil {
		fatal(fmt.Errorf("-memlimit: %w", err))
	}
	chaosCfg, err := chaos.Parse(*chaosSpec)
	if err != nil {
		fatal(fmt.Errorf("-chaos: %w", err))
	}
	orderPolicy, err := analysis.ParseOrderPolicy(*order)
	if err != nil {
		fatal(fmt.Errorf("-order: %w", err))
	}

	o := setupObs("diffprop", *httpAddr, *logLevel, *logJSON, *tracePath, *traceFmt, *flightPath)
	// A panic anywhere below still produces the flight dump — the whole
	// point of a flight recorder — before the panic propagates.
	defer func() {
		if r := recover(); r != nil {
			dumpFlight("panic")
			shutdownObs()
			panic(r)
		}
	}()

	c, err := loadCircuit(*circuit, *bench)
	if err != nil {
		fatal(err)
	}
	e, err := diffprop.New(c, nil)
	if err != nil {
		fatal(err)
	}
	w := e.Circuit
	if *workerShard == "" {
		// Workers keep stdout clean: it is the supervision protocol pipe.
		fmt.Printf("circuit: %s (analyzed as %d two-input gates, %d PIs, %d POs)\n\n",
			c, w.NumGates(), len(w.Inputs), len(w.Outputs))
	}

	// First SIGINT cancels the campaign gracefully between faults; a second
	// forces immediate exit so a wedged analysis cannot hold the process
	// hostage. signal.NotifyContext would swallow the repeat Ctrl-C.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "diffprop: interrupt: finishing in-flight faults, then reporting partial results (interrupt again to exit immediately)")
		cancel()
		<-sigCh
		fmt.Fprintln(os.Stderr, "diffprop: second interrupt: exiting now; partial results were not reported, but checkpointed records (if any) remain valid for -resume")
		dumpFlight("interrupt")
		shutdownObs()
		os.Exit(130)
	}()

	rcfg := diffprop.Recovery{
		NodeLimit:       *nodeLimit,
		RetryMultiplier: *retryMult,
	}
	if *gcAuto {
		rcfg.SiftPasses = diffprop.DefaultSiftPasses
		if rcfg.NodeLimit == 0 {
			rcfg.NodeLimit = 1 << 20
		}
	}

	ccfg := analysis.CampaignConfig{
		Workers:         *workers,
		Context:         ctx,
		FaultOps:        *budget,
		FaultTimeout:    *timeout,
		FallbackVectors: *estVectors,
		Recovery:        rcfg,
		MemLimit:        memCeiling,
		Obs:             o,
		Chaos:           chaosCfg,
		Calibrate:       analysis.Calibration{Enabled: *calibrate},
		Order:           orderPolicy,
		FullScan:        *fullScan,
	}
	if *verbose {
		ccfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d faults", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if *workerShard != "" {
		wm := &workerMode{
			shard:    *workerShard,
			attempt:  *workerAttempt,
			hbEvery:  *workerHB,
			model:    *model,
			max:      *max,
			maxBFs:   *maxBFs,
			theta:    *theta,
			seed:     *seed,
			ckptPath: *ckptPath,
			chaosCfg: chaosCfg,
			ccfg:     ccfg,
		}
		wm.run(c, w) // exits the process
	}
	var sup *supervisorMode
	if *shards > 0 {
		sup = &supervisorMode{
			shards:      *shards,
			procs:       *shardProcs,
			dir:         *shardDir,
			hbTimeout:   *hbTimeout,
			maxRestarts: *maxRestart,
			binary:      *workerBin,
			ckptPath:    *ckptPath,
			verbose:     *verbose,
			obs:         o,
			flags: workerFlagSet{
				circuit: *circuit, bench: *bench, model: *model,
				max: *max, maxBFs: *maxBFs, theta: *theta, seed: *seed,
				workers: *workers, order: *order, fullScan: *fullScan,
				budget: *budget, timeout: *timeout, nodeLimit: *nodeLimit,
				gcAuto: *gcAuto, retryMult: *retryMult, memLimit: *memLimit,
				estVectors: *estVectors, calibrate: *calibrate,
				chaosSpec: *chaosSpec, logLevel: *logLevel, logJSON: *logJSON,
				hbEvery: *workerHB,
			},
		}
	}

	switch strings.ToLower(*model) {
	case "stuckat", "sa":
		fs := faults.CheckpointStuckAts(w)
		fs = truncateFaults(fs, *max)
		var study analysis.StuckAtStudy
		if sup != nil {
			study = runShardedStuckAt(ctx, sup, c, w, fs, ccfg)
		} else {
			cp := openCheckpoint(*ckptPath, *resume, *retryDegr, analysis.StuckAtCheckpointHeader(w, fs), &ccfg)
			var err error
			study, err = analysis.RunStuckAtCampaign(c, nil, fs, ccfg)
			closeCheckpoint(cp)
			if err != nil {
				fatal(err)
			}
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, study.Stats)
		}
		if *dotOut != "" && len(fs) > 0 {
			res := e.StuckAt(fs[0])
			dot := e.Manager().DOT(fs[0].Describe(w), res.Complete)
			if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (complete test set of %s)\n", *dotOut, fs[0].Describe(w))
		}
		if !*summary {
			printStuckAt(e, w, study)
		}
		fmt.Printf("faults: %d   detectable: %.1f%%   mean detectability (detectable): %.4f   observed==fed rate: %.3f\n",
			len(study.Records), 100*study.CoverageRate(), study.MeanDetectable(), study.ObservedEqualsFedRate())
		fmt.Printf("selective trace: %.1f of %d gates evaluated per fault on average\n",
			study.MeanGatesEvaluated(), w.NumGates())
		writeCalibJSON(*calibJSON, c.Name, study.Stats)
		finishCampaign(study.Stats, study.Errors(), study.DegradedFaults())
	case "and", "or":
		kind := faults.WiredAND
		if strings.ToLower(*model) == "or" {
			kind = faults.WiredOR
		}
		set, pop, sampled := analysis.BridgingSet(w, kind, *maxBFs, *theta, *seed)
		set = truncateFaults(set, *max)
		var study analysis.BridgingStudy
		if sup != nil {
			study = runShardedBridging(ctx, sup, c, w, set, kind, pop, sampled, ccfg)
		} else {
			cp := openCheckpoint(*ckptPath, *resume, *retryDegr, analysis.BridgingCheckpointHeader(w, set), &ccfg)
			var err error
			study, err = analysis.RunBridgingCampaign(c, nil, set, kind, pop, sampled, ccfg)
			closeCheckpoint(cp)
			if err != nil {
				fatal(err)
			}
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, study.Stats)
		}
		if !*summary {
			printBridging(w, study)
		}
		fmt.Printf("faults: %d of %d potentially detectable NFBFs (sampled: %v)\n", len(study.Records), pop, sampled)
		fmt.Printf("detectable: %.1f%%   mean detectability (detectable): %.4f   stuck-at behavior: %.1f%%\n",
			100*study.CoverageRate(), study.MeanDetectable(), 100*study.StuckAtProportion())
		writeCalibJSON(*calibJSON, c.Name, study.Stats)
		finishCampaign(study.Stats, study.Errors(), study.DegradedFaults())
	default:
		fatal(fmt.Errorf("unknown fault model %q (stuckat, and, or)", *model))
	}
}

// setupObs builds the campaign observer from the -http/-log/-logjson/
// -trace/-traceformat/-flight flags and arms shutdownObs plus dumpFlight.
// Returns nil — the zero-overhead off state — when no observability flag
// is set. The timeline sampler runs whenever the flight recorder or the
// debug server wants it (the /timeline endpoint and the dump embed it).
func setupObs(prog, httpAddr, logLevel string, logJSON bool, tracePath, traceFmt, flightPath string) *obs.Observer {
	if httpAddr == "" && logLevel == "" && tracePath == "" && flightPath == "" {
		return nil
	}
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	if flightPath != "" {
		o.Flight = obs.NewFlightRecorder(0)
	}
	var timeline *obs.Timeline
	if flightPath != "" || httpAddr != "" {
		timeline = o.StartTimeline(0, 0)
	}
	if logLevel != "" {
		lv, err := obs.ParseLevel(logLevel)
		if err != nil {
			fatal(err)
		}
		o.Log = obs.NewLogger(os.Stderr, lv, logJSON)
	}
	var traceFile *os.File
	if tracePath != "" {
		format, err := obs.ParseTraceFormat(traceFmt)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		o.Tracer = obs.NewTracer(f, format)
	}
	var srv *obs.Server
	if httpAddr != "" {
		o.Metrics.PublishExpvar(prog)
		s, err := obs.Serve(httpAddr, o)
		if err != nil {
			fatal(err)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s (/metrics /progress /debug/pprof)\n", prog, s.Addr())
	}
	var once sync.Once
	shutdownObs = func() {
		once.Do(func() {
			timeline.Stop()
			if o.Tracer != nil {
				if err := o.Tracer.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "%s: closing trace: %v\n", prog, err)
				}
			}
			if traceFile != nil {
				traceFile.Close()
			}
			if srv != nil {
				srv.Close()
			}
		})
	}
	if flightPath != "" {
		var dumpOnce sync.Once
		dumpFlight = func(reason string) {
			dumpOnce.Do(func() {
				// Freeze the timeline first so the dump's final sample covers
				// the run's tail.
				timeline.Stop()
				if ok, err := o.WriteFlightDump(flightPath, prog, reason); err != nil {
					fmt.Fprintf(os.Stderr, "%s: writing flight dump: %v\n", prog, err)
				} else if ok {
					fmt.Fprintf(os.Stderr, "%s: wrote flight dump (%s) to %s\n", prog, reason, flightPath)
				}
			})
		}
	}
	return o
}

// truncateFaults applies -max, warning on stderr when it actually drops
// faults: a truncated set silently changes every aggregate the report
// prints.
func truncateFaults[F any](fs []F, max int) []F {
	if max > 0 && len(fs) > max {
		fmt.Fprintf(os.Stderr, "diffprop: warning: -max truncates the fault set from %d to %d faults; aggregates cover the truncated set only\n", len(fs), max)
		return fs[:max]
	}
	return fs
}

// openCheckpoint wires the checkpoint file (if any) into the campaign
// config: fresh creation by default, validated resume with -resume. With
// retryDegraded, restored Approximate/error/skipped records are dropped
// so the campaign re-attempts those faults; the re-run records append
// after the originals and win on the next load.
func openCheckpoint(path string, resume, retryDegraded bool, hdr analysis.CheckpointHeader, ccfg *analysis.CampaignConfig) *analysis.Checkpointer {
	if path == "" {
		return nil
	}
	if resume {
		cp, records, err := analysis.ResumeCheckpoint(path, hdr)
		if err != nil {
			fatal(err)
		}
		retrying := 0
		if retryDegraded {
			retrying, err = analysis.DropDegradedRecords(records)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			if retrying > 0 {
				fmt.Fprintf(os.Stderr, "diffprop: re-attempting %d degraded/errored fault(s) from %s\n", retrying, path)
			}
		}
		if len(records) > 0 {
			fmt.Fprintf(os.Stderr, "diffprop: resuming %s: %d of %d faults already analyzed\n", path, len(records), hdr.Faults)
		}
		ccfg.Obs.Logger().Info("checkpoint resumed",
			"path", path, "fingerprint", hdr.Fingerprint,
			"restored", len(records), "retrying", retrying, "faults", hdr.Faults)
		ccfg.Checkpoint = cp
		ccfg.Resume = records
		return cp
	}
	cp, err := analysis.CreateCheckpoint(path, hdr)
	if err != nil {
		fatal(err)
	}
	ccfg.Checkpoint = cp
	return cp
}

// closeCheckpoint flushes the checkpoint; main exits through os.Exit, so
// this cannot be left to a defer.
func closeCheckpoint(cp *analysis.Checkpointer) {
	if cp == nil {
		return
	}
	if err := cp.Close(); err != nil {
		fatal(err)
	}
}

// writeCalibJSON persists the campaign's final calibration state (the
// -calibjson flag) so CI can publish the self-tuned bounds as an artifact
// next to the benchmark numbers.
func writeCalibJSON(path, circuit string, stats analysis.CampaignStats) {
	if path == "" {
		return
	}
	out, err := json.MarshalIndent(struct {
		Circuit         string  `json:"circuit"`
		Faults          int     `json:"faults"`
		Degraded        int     `json:"degraded"`
		Rescued         int     `json:"rescued"`
		BudgetOps       int64   `json:"calibration_budget_ops"`
		RetryMultiplier float64 `json:"calibration_retry_multiplier"`
		Updates         int     `json:"calibration_updates"`
	}{
		Circuit:         circuit,
		Faults:          stats.Faults,
		Degraded:        stats.Degraded,
		Rescued:         stats.Rescued,
		BudgetOps:       stats.CalibrationBudgetOps,
		RetryMultiplier: stats.CalibrationRetryMult,
		Updates:         stats.CalibrationUpdates,
	}, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "diffprop: wrote calibration state to %s\n", path)
}

// finishCampaign reports degradation/cancellation on stderr and exits
// non-zero when any per-fault analysis failed. The degraded and error
// lists come pre-sorted by fault index, so this output is deterministic
// regardless of how the workers interleaved.
func finishCampaign(stats analysis.CampaignStats, errs []analysis.FaultError, degraded []analysis.DegradedFault) {
	dumpFlight("completed")
	shutdownObs()
	if stats.Rescued > 0 {
		fmt.Fprintf(os.Stderr, "diffprop: recovery ladder rescued %d of %d budget-blown fault(s) to exact results\n", stats.Rescued, stats.Retried)
	}
	if stats.Degraded > 0 {
		fmt.Fprintf(os.Stderr, "diffprop: %d fault(s) blew the per-fault budget; their detectabilities are random-vector estimates (marked ~):\n", stats.Degraded)
		const maxListed = 20
		for i, d := range degraded {
			if i == maxListed {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(degraded)-maxListed)
				break
			}
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
	}
	if stats.Canceled {
		fmt.Fprintln(os.Stderr, "diffprop: campaign cancelled; unanalyzed faults are marked skipped")
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "diffprop: %d fault(s) failed to analyze:\n", len(errs))
		for _, fe := range errs {
			fmt.Fprintf(os.Stderr, "  %s\n", fe)
		}
		os.Exit(2)
	}
}

func loadCircuit(name, bench string) (*netlist.Circuit, error) {
	switch {
	case name != "" && bench != "":
		return nil, fmt.Errorf("pass either -circuit or -bench, not both")
	case name != "":
		return circuits.Get(name)
	case bench != "":
		f, err := os.Open(bench)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(bench, f)
	default:
		return nil, fmt.Errorf("pass -circuit <name> or -bench <file>")
	}
}

func printStuckAt(e *diffprop.Engine, w *netlist.Circuit, study analysis.StuckAtStudy) {
	t := report.Table{
		Columns: []string{"fault", "detect", "bound", "adher", "POs obs/fed", "toPO", "test"},
	}
	for _, r := range study.Records {
		var test string
		switch {
		case r.Skipped:
			t.Rows = append(t.Rows, []string{r.Fault.Describe(w), "(skipped)", "", "", "", "", ""})
			continue
		case r.Err != "":
			t.Rows = append(t.Rows, []string{r.Fault.Describe(w), "(error)", "", "", "", "", r.Err})
			continue
		case r.Approximate:
			// The exact complete test set was never built, so there is no
			// vector to extract; the detectability is an estimate.
			test = fmt.Sprintf("(estimate over %d vectors)", r.EstimateVectors)
		case r.Detectable():
			res := e.StuckAt(r.Fault)
			test = vectorString(e, res)
		default:
			test = "(redundant)"
		}
		adher := "-"
		if r.AdherenceOK {
			adher = fmt.Sprintf("%.3f", r.Adherence)
		}
		detect := fmt.Sprintf("%.4f", r.Detectability)
		if r.Approximate {
			detect = "~" + detect
		}
		t.Rows = append(t.Rows, []string{
			r.Fault.Describe(w),
			detect,
			fmt.Sprintf("%.4f", r.UpperBound),
			adher,
			fmt.Sprintf("%d/%d", r.ObservedPOs, r.POsFed),
			fmt.Sprintf("%d", r.MaxLevelsToPO),
			test,
		})
	}
	fmt.Println(t.Text())
}

func printBridging(w *netlist.Circuit, study analysis.BridgingStudy) {
	t := report.Table{
		Columns: []string{"fault", "detect", "bound", "adher", "POs obs/fed", "stuck-at?"},
	}
	for _, r := range study.Records {
		switch {
		case r.Skipped:
			t.Rows = append(t.Rows, []string{r.Fault.Describe(w), "(skipped)", "", "", "", ""})
			continue
		case r.Err != "":
			t.Rows = append(t.Rows, []string{r.Fault.Describe(w), "(error)", "", "", "", r.Err})
			continue
		}
		adher := "-"
		if r.AdherenceOK {
			adher = fmt.Sprintf("%.3f", r.Adherence)
		}
		sa := ""
		if r.ActsStuckAt {
			sa = "yes"
		}
		detect := fmt.Sprintf("%.4f", r.Detectability)
		if r.Approximate {
			detect = "~" + detect
		}
		t.Rows = append(t.Rows, []string{
			r.Fault.Describe(w),
			detect,
			fmt.Sprintf("%.4f", r.UpperBound),
			adher,
			fmt.Sprintf("%d/%d", r.ObservedPOs, r.POsFed),
			sa,
		})
	}
	fmt.Println(t.Text())
}

// vectorString extracts one test from the complete test set and renders it
// in primary-input declaration order.
func vectorString(e *diffprop.Engine, res diffprop.Result) string {
	cube := e.Manager().AnySat(res.Complete)
	if cube == nil {
		return "(redundant)"
	}
	v2i := e.VarToInput()
	out := make([]byte, len(cube))
	for i := range out {
		out[i] = '-'
	}
	for v, s := range cube {
		if v2i[v] < 0 {
			continue
		}
		switch s {
		case 0:
			out[v2i[v]] = '0'
		case 1:
			out[v2i[v]] = '1'
		}
	}
	return string(out[:len(e.Circuit.Inputs)])
}

func fatal(err error) {
	// A CheckpointError (or any campaign abort) still gets its post-mortem:
	// dump before tearing observability down.
	dumpFlight("error")
	shutdownObs()
	fmt.Fprintln(os.Stderr, "diffprop:", err)
	os.Exit(1)
}
