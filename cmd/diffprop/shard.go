// Sharded campaign modes: the -shards supervisor (partition the fault
// set, supervise worker subprocesses, merge bit-identical results) and
// the internal -worker-shard worker (analyze one shard, speak the JSONL
// protocol on stdout, die loudly rather than run orphaned).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/chaos"
	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/supervise"
)

// quarantineErr is the deterministic Err message stamped on a poison
// fault's record: same fault, same message, every rerun.
const quarantineErr = "quarantined: fault repeatedly killed its worker process"

// Worker exit codes (beyond main's 0 = done, 1 = fatal, 130 = double
// interrupt): a worker that loses its supervisor exits with exitOrphaned
// instead of running on unsupervised.
const exitOrphaned = 4

// workerFlagSet carries the analysis flags a supervisor forwards to its
// workers, so a worker derives exactly the campaign the supervisor
// partitioned.
type workerFlagSet struct {
	circuit, bench string
	model          string
	max, maxBFs    int
	theta          float64
	seed           int64
	workers        int
	order          string
	fullScan       bool
	budget         int64
	timeout        time.Duration
	nodeLimit      int
	gcAuto         bool
	retryMult      float64
	memLimit       string
	estVectors     int
	calibrate      bool
	chaosSpec      string
	logLevel       string
	logJSON        bool
	hbEvery        time.Duration
}

// supervisorMode is the -shards configuration.
type supervisorMode struct {
	shards      int
	procs       int
	dir         string
	hbTimeout   time.Duration
	maxRestarts int
	binary      string // worker executable ("" = os.Executable())
	ckptPath    string
	verbose     bool
	obs         *obs.Observer
	flags       workerFlagSet
}

// workerArgs rebuilds a worker command line for one lease. A degraded
// lease sheds analysis threads and tightens the node watermark: survival
// over parameter fidelity after repeated memory-pressure deaths (the
// README's "Fault tolerance" section spells out the trade).
func (s *supervisorMode) workerArgs(sh supervise.Shard) []string {
	f := s.flags
	workers, nodeLimit := f.workers, f.nodeLimit
	if sh.Degrade > 0 {
		if workers <= 0 {
			workers = 2 // "one per CPU" is what just OOMed; start shedding from a known point
		}
		if workers>>sh.Degrade >= 1 {
			workers >>= sh.Degrade
		} else {
			workers = 1
		}
		if nodeLimit <= 0 {
			nodeLimit = 1 << 20
		}
		if nodeLimit>>sh.Degrade >= 1<<16 {
			nodeLimit >>= sh.Degrade
		} else {
			nodeLimit = 1 << 16
		}
	}
	args := []string{
		"-worker-shard", sh.Range(),
		"-worker-attempt", strconv.Itoa(sh.Attempt),
		"-worker-hb", f.hbEvery.String(),
		"-checkpoint", sh.Path,
		"-model", f.model,
		"-max", strconv.Itoa(f.max),
		"-maxbfs", strconv.Itoa(f.maxBFs),
		"-theta", strconv.FormatFloat(f.theta, 'g', -1, 64),
		"-seed", strconv.FormatInt(f.seed, 10),
		"-workers", strconv.Itoa(workers),
		"-order", f.order,
		"-budget", strconv.FormatInt(f.budget, 10),
		"-timeout", f.timeout.String(),
		"-nodelimit", strconv.Itoa(nodeLimit),
		"-retrybudget", strconv.FormatFloat(f.retryMult, 'g', -1, 64),
		"-estvectors", strconv.Itoa(f.estVectors),
	}
	if f.circuit != "" {
		args = append(args, "-circuit", f.circuit)
	}
	if f.bench != "" {
		args = append(args, "-bench", f.bench)
	}
	if f.fullScan {
		args = append(args, "-fullscan")
	}
	if f.gcAuto {
		args = append(args, "-gcauto")
	}
	if f.calibrate {
		args = append(args, "-calibrate")
	}
	if f.memLimit != "" {
		args = append(args, "-memlimit", f.memLimit)
	}
	if f.chaosSpec != "" {
		args = append(args, "-chaos", f.chaosSpec)
	}
	if f.logLevel != "" {
		args = append(args, "-log", f.logLevel)
	}
	if f.logJSON {
		args = append(args, "-logjson")
	}
	return args
}

// supervise runs the sharded campaign and returns the merged per-fault
// records (global index -> record JSON), bit-identical to what an
// unsupervised run would have checkpointed.
func (s *supervisorMode) supervise(ctx context.Context, store supervise.Store, total int) map[int]json.RawMessage {
	bin := s.binary
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			fatal(fmt.Errorf("-shards: locating worker binary: %w", err))
		}
		bin = exe
	}
	dir := s.dir
	if dir == "" {
		dir = s.ckptPath + ".shards"
	}
	launcher := &supervise.ExecLauncher{
		Binary: bin,
		Args:   s.workerArgs,
		BadLine: func(err error) {
			fmt.Fprintln(os.Stderr, "diffprop: supervisor:", err)
		},
	}
	var progress func(done, total int)
	if s.verbose {
		progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d faults (supervised)", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := supervise.RunSharded(ctx, supervise.CampaignConfig{
		Supervisor: supervise.Config{
			Launcher:         launcher,
			HeartbeatTimeout: s.hbTimeout,
			MaxRestarts:      s.maxRestarts,
			Log:              s.obs.Logger(),
			Obs:              s.obs,
			Progress:         progress,
		},
		Store:  store,
		Faults: total,
		Shards: s.shards,
		Procs:  s.procs,
		Dir:    dir,
	})
	sup := res.Supervision
	if sup.Deaths > 0 || len(sup.Quarantined) > 0 {
		fmt.Fprintf(os.Stderr, "diffprop: supervisor: %d worker death(s), %d restart(s), %d bisection(s), %d fault(s) quarantined, %d degraded relaunch(es)\n",
			sup.Deaths, sup.Restarts, sup.Bisects, len(sup.Quarantined), sup.DegradedLaunches)
	}
	if err != nil {
		fatal(fmt.Errorf("supervised campaign: %w", err))
	}
	return res.Records
}

// stuckAtStore adapts a stuck-at campaign to the supervisor's Store.
type stuckAtStore struct {
	w  *netlist.Circuit
	fs []faults.StuckAt
}

func (s stuckAtStore) Header(lo, hi int) analysis.CheckpointHeader {
	return analysis.StuckAtCheckpointHeader(s.w, s.fs[lo:hi]).WithShard(lo, hi)
}

func (s stuckAtStore) QuarantineRecord(global int) (json.RawMessage, error) {
	return json.Marshal(analysis.StuckAtRecord{Fault: s.fs[global], Err: quarantineErr})
}

// bridgingStore adapts a bridging campaign to the supervisor's Store.
type bridgingStore struct {
	w  *netlist.Circuit
	bs []faults.Bridging
}

func (s bridgingStore) Header(lo, hi int) analysis.CheckpointHeader {
	return analysis.BridgingCheckpointHeader(s.w, s.bs[lo:hi]).WithShard(lo, hi)
}

func (s bridgingStore) QuarantineRecord(global int) (json.RawMessage, error) {
	return json.Marshal(analysis.BridgingRecord{Fault: s.bs[global], Err: quarantineErr})
}

// finishSharded persists the merged records as the campaign checkpoint
// (full-set header, ascending index order — directly usable by a later
// unsupervised -resume) and returns them as the resume map for the final
// study rebuild.
func (s *supervisorMode) finishSharded(records map[int]json.RawMessage, hdr analysis.CheckpointHeader, ccfg analysis.CampaignConfig) analysis.CampaignConfig {
	if err := analysis.WriteMergedCheckpoint(s.ckptPath, hdr, records); err != nil {
		fatal(fmt.Errorf("writing merged checkpoint: %w", err))
	}
	fmt.Fprintf(os.Stderr, "diffprop: merged %d shard record(s) into %s\n", len(records), s.ckptPath)
	// The study is rebuilt purely from the merged records: every fault is
	// "resumed", nothing is re-analyzed, and the resulting records are the
	// workers' bytes — bit-identical to an unsupervised run. Chaos and
	// checkpointing stay out of the replay.
	ccfg.Resume = records
	ccfg.Checkpoint = nil
	ccfg.Chaos = nil
	ccfg.Progress = nil
	return ccfg
}

// runShardedStuckAt is the -shards path of the stuckat model.
func runShardedStuckAt(ctx context.Context, s *supervisorMode, c *netlist.Circuit, w *netlist.Circuit, fs []faults.StuckAt, ccfg analysis.CampaignConfig) analysis.StuckAtStudy {
	records := s.supervise(ctx, stuckAtStore{w: w, fs: fs}, len(fs))
	ccfg = s.finishSharded(records, analysis.StuckAtCheckpointHeader(w, fs), ccfg)
	study, err := analysis.RunStuckAtCampaign(c, nil, fs, ccfg)
	if err != nil {
		fatal(err)
	}
	return study
}

// runShardedBridging is the -shards path of the and/or models.
func runShardedBridging(ctx context.Context, s *supervisorMode, c *netlist.Circuit, w *netlist.Circuit, set []faults.Bridging, kind faults.BridgeKind, pop int, sampled bool, ccfg analysis.CampaignConfig) analysis.BridgingStudy {
	records := s.supervise(ctx, bridgingStore{w: w, bs: set}, len(set))
	ccfg = s.finishSharded(records, analysis.BridgingCheckpointHeader(w, set), ccfg)
	study, err := analysis.RunBridgingCampaign(c, nil, set, kind, pop, sampled, ccfg)
	if err != nil {
		fatal(err)
	}
	return study
}

// workerMode is the -worker-shard configuration: one shard of the fault
// set, one checkpoint, the protocol on stdout.
type workerMode struct {
	shard    string
	attempt  int
	hbEvery  time.Duration
	model    string
	max      int
	maxBFs   int
	theta    float64
	seed     int64
	ckptPath string
	chaosCfg *chaos.Config
	ccfg     analysis.CampaignConfig
}

// run analyzes the worker's shard and exits the process: 0 after a done
// message, 1 on a fatal error, exitOrphaned when the supervisor's stdin
// pipe reaches EOF. It never returns.
func (m *workerMode) run(c *netlist.Circuit, w *netlist.Circuit) {
	lo, hi, err := supervise.ParseRange(m.shard)
	if err != nil {
		fatal(err)
	}
	rep := supervise.NewReporter(os.Stdout, lo, hi)
	workerFatal := func(err error) {
		rep.Error(err)
		fatal(err)
	}
	// The orphan watchdog: the supervisor holds our stdin open for our
	// whole life; EOF means it is gone — even by SIGKILL — and an
	// unsupervised worker must not keep burning the machine.
	supervise.WatchStdin(os.Stdin, func() {
		fmt.Fprintf(os.Stderr, "diffprop: worker %s: supervisor is gone; exiting\n", m.shard)
		os.Exit(exitOrphaned)
	})

	var (
		hdr   analysis.CheckpointHeader
		runIt func(cp *analysis.Checkpointer, resume map[int]json.RawMessage) (int, error)
	)
	switch strings.ToLower(m.model) {
	case "stuckat", "sa":
		fs := truncateFaults(faults.CheckpointStuckAts(w), m.max)
		if hi > len(fs) {
			workerFatal(fmt.Errorf("worker shard %s exceeds the %d-fault set (flag drift between supervisor and worker)", m.shard, len(fs)))
		}
		sub := fs[lo:hi]
		hdr = analysis.StuckAtCheckpointHeader(w, sub).WithShard(lo, hi)
		runIt = func(cp *analysis.Checkpointer, resume map[int]json.RawMessage) (int, error) {
			ccfg := m.campaignConfig(cp, resume, lo, rep)
			study, err := analysis.RunStuckAtCampaign(c, nil, sub, ccfg)
			n := 0
			for _, r := range study.Records {
				if !r.Skipped {
					n++
				}
			}
			return n, err
		}
	case "and", "or":
		kind := faults.WiredAND
		if strings.ToLower(m.model) == "or" {
			kind = faults.WiredOR
		}
		set, _, _ := analysis.BridgingSet(w, kind, m.maxBFs, m.theta, m.seed)
		set = truncateFaults(set, m.max)
		if hi > len(set) {
			workerFatal(fmt.Errorf("worker shard %s exceeds the %d-fault set (flag drift between supervisor and worker)", m.shard, len(set)))
		}
		sub := set[lo:hi]
		hdr = analysis.BridgingCheckpointHeader(w, sub).WithShard(lo, hi)
		runIt = func(cp *analysis.Checkpointer, resume map[int]json.RawMessage) (int, error) {
			ccfg := m.campaignConfig(cp, resume, lo, rep)
			study, err := analysis.RunBridgingCampaign(c, nil, sub, kind, len(sub), false, ccfg)
			n := 0
			for _, r := range study.Records {
				if !r.Skipped {
					n++
				}
			}
			return n, err
		}
	default:
		workerFatal(fmt.Errorf("unknown fault model %q", m.model))
	}

	cp, resume, err := analysis.ResumeCheckpoint(m.ckptPath, hdr)
	if err != nil {
		workerFatal(err)
	}
	rep.Hello(os.Getpid(), hi-lo)
	rep.Heartbeat(len(resume))
	n, err := runIt(cp, resume)
	if cerr := cp.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		workerFatal(err)
	}
	if n < hi-lo {
		// Cancelled or partially skipped: this is not a completed shard,
		// and claiming so would merge skip markers into the campaign.
		workerFatal(fmt.Errorf("worker %s finished only %d of %d faults", m.shard, n, hi-lo))
	}
	rep.Done(n)
	shutdownObs()
	os.Exit(0)
}

// campaignConfig specializes the shared campaign config for this worker:
// shard-local checkpointing/resume, heartbeat progress, and chaos keyed
// so a sharded campaign fires the exact same injections as an unsharded
// one (KeyOffset rebases fault keys; Attempt gates one-shot process
// points on restarts).
func (m *workerMode) campaignConfig(cp *analysis.Checkpointer, resume map[int]json.RawMessage, lo int, rep *supervise.Reporter) analysis.CampaignConfig {
	ccfg := m.ccfg
	ccfg.Checkpoint = cp
	ccfg.Resume = resume
	if m.chaosCfg != nil {
		cc := *m.chaosCfg
		cc.KeyOffset = lo
		cc.Attempt = m.attempt
		cc.Tear = cp.TearTail
		ccfg.Chaos = &cc
		// The reporter gets its own injector: hbstall is keyed by
		// heartbeat sequence, not fault index.
		rep.SetChaos(chaos.New(&cc))
	}
	var done atomic.Int64
	done.Store(int64(len(resume)))
	ccfg.Progress = func(d, total int) { done.Store(int64(d)) }
	go func() {
		t := time.NewTicker(m.hbEvery)
		defer t.Stop()
		for range t.C {
			rep.Heartbeat(int(done.Load()))
		}
	}()
	return ccfg
}
