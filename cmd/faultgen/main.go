// Command faultgen generates and inspects fault sets: collapsed
// checkpoint stuck-at faults and screened, layout-sampled non-feedback
// bridging fault sets, exactly as the paper's §2 prescribes.
//
// Usage:
//
//	faultgen -circuit c432s                       # checkpoint stuck-ats
//	faultgen -circuit c432s -model and -sample 50 # sampled AND NFBFs
//	faultgen -circuit c1355s -model or -stats     # population statistics only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/circuits"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/netlist"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "built-in circuit name")
		bench   = flag.String("bench", "", "path to a .bench netlist")
		model   = flag.String("model", "stuckat", "fault model: stuckat, and, or")
		sample  = flag.Int("sample", 1000, "bridging-fault sample size ceiling")
		theta   = flag.Float64("theta", 0.3, "exponential distance parameter")
		seed    = flag.Int64("seed", 1990, "sampling seed")
		stats   = flag.Bool("stats", false, "print statistics only, not the fault list")
		decomp  = flag.Bool("decompose", false, "generate over the two-input decomposition (as the analyses do)")
	)
	flag.Parse()

	c, err := loadCircuit(*circuit, *bench)
	if err != nil {
		fatal(err)
	}
	if *decomp {
		c = c.Decompose2()
	}

	switch strings.ToLower(*model) {
	case "stuckat", "sa":
		sites := faults.Checkpoints(c)
		fs := faults.CheckpointStuckAts(c)
		fmt.Printf("%s: %d checkpoint sites, %d collapsed checkpoint stuck-at faults (%d uncollapsed)\n",
			c.Name, len(sites), len(fs), 2*len(sites))
		if !*stats {
			for _, f := range fs {
				fmt.Println(" ", f.Describe(c))
			}
		}
	case "and", "or":
		kind := faults.WiredAND
		if strings.ToLower(*model) == "or" {
			kind = faults.WiredOR
		}
		all := faults.AllNFBFs(c, kind)
		n := c.NumNets()
		fb := faults.CountFeedbackPairs(c)
		fmt.Printf("%s: %d nets, %d unordered pairs, %d feedback pairs, %d potentially detectable %v\n",
			c.Name, n, n*(n-1)/2, fb, len(all), kind)
		set := all
		if len(all) > *sample {
			set = layout.SampleNFBFs(c, all, *sample, *theta, *seed)
			p := layout.Place(c)
			norm := layout.MaxDistance(p, all)
			fmt.Printf("sampled %d faults with theta=%g (mean normalized distance %.3f vs population %.3f)\n",
				len(set), *theta, layout.MeanDistance(p, set, norm), layout.MeanDistance(p, all, norm))
		}
		if !*stats {
			for _, b := range set {
				fmt.Println(" ", b.Describe(c))
			}
		}
	default:
		fatal(fmt.Errorf("unknown fault model %q (stuckat, and, or)", *model))
	}
}

func loadCircuit(name, bench string) (*netlist.Circuit, error) {
	switch {
	case name != "" && bench != "":
		return nil, fmt.Errorf("pass either -circuit or -bench, not both")
	case name != "":
		return circuits.Get(name)
	case bench != "":
		f, err := os.Open(bench)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(bench, f)
	default:
		return nil, fmt.Errorf("pass -circuit <name> or -bench <file>")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultgen:", err)
	os.Exit(1)
}
