// Package repro is a from-scratch Go reproduction of
//
//	K. M. Butler and M. R. Mercer, "The Influences of Fault Type and
//	Topology on Fault Model Performance and the Implications to Test and
//	Testable Design", 27th ACM/IEEE Design Automation Conference (DAC),
//	1990, pp. 673-678.
//
// The library implements Difference Propagation — exact, OBDD-based
// computation of complete test sets, detection probabilities, syndromes
// and adherence for stuck-at and non-feedback bridging faults — together
// with every substrate it needs: a ROBDD engine, an ISCAS-85-style
// netlist layer, fault models with the paper's screening and collapsing
// rules, a layout-distance fault sampler, a parallel-pattern fault
// simulator used as the exhaustive baseline, and a benchmark circuit set
// mirroring the paper's (see DESIGN.md for the documented stand-ins).
//
// Entry points:
//
//   - internal/diffprop: the core engine (Engine.StuckAt, Engine.Bridging)
//   - internal/experiments: regenerates Table 1 and Figures 1-8
//   - cmd/figures, cmd/diffprop, cmd/faultgen, cmd/benchgen: CLIs
//   - examples/: runnable walkthroughs
//
// bench_test.go in this directory regenerates every exhibit of the
// paper's evaluation under `go test -bench`.
package repro
