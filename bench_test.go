package repro

// One benchmark per table and figure of the paper's evaluation section,
// plus the Difference-Propagation-versus-exhaustive-simulation baseline
// the paper argues from and micro-benchmarks of the substrates.
//
//	go test -bench=. -benchmem
//
// The figure benchmarks share a runner (studies are cached after their
// first computation, like cmd/figures), so a full sweep costs roughly one
// complete regeneration of the paper. BenchScale trims the bridging
// sample ceiling to keep that tractable; cmd/figures defaults to the
// paper-scale 1000.

import (
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/atpg"
	"repro/internal/bdd"
	"repro/internal/circuits"
	"repro/internal/diagnose"
	"repro/internal/diffprop"
	"repro/internal/equiv"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/podem"
	"repro/internal/report"
	"repro/internal/scoap"
	"repro/internal/simulate"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// benchRunner returns the shared experiment runner at bench scale.
func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.MaxBFs = 300
		runner = experiments.NewRunner(cfg)
	})
	return runner
}

func benchFigure(b *testing.B, fn func() (report.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable1_DifferenceIdentities regenerates and verifies Table 1:
// the ring-sum difference functions for every primitive gate class.
func BenchmarkTable1_DifferenceIdentities(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.Table1()
		if len(t.Rows) != 4 {
			b.Fatal("Table 1 must have 4 rows")
		}
		for _, row := range t.Rows {
			if row[2] == "FAIL" {
				b.Fatalf("identity %s failed", row[0])
			}
		}
	}
}

// BenchmarkFig1_StuckAtHistograms regenerates Figure 1: stuck-at
// detection probability histograms for c95s and the 74181 ALU.
func BenchmarkFig1_StuckAtHistograms(b *testing.B) {
	benchFigure(b, benchRunner(b).Fig1)
}

// BenchmarkFig2_StuckAtTrend regenerates Figure 2: mean stuck-at
// detectability (raw and PO-normalized) versus netlist size over the
// whole benchmark set.
func BenchmarkFig2_StuckAtTrend(b *testing.B) {
	benchFigure(b, benchRunner(b).Fig2)
}

// BenchmarkFig3_StuckAtPODistance regenerates Figure 3: mean stuck-at
// detectability versus maximum levels to a primary output on c1355s.
func BenchmarkFig3_StuckAtPODistance(b *testing.B) {
	benchFigure(b, benchRunner(b).Fig3)
}

// BenchmarkFig4_AdherenceHistogram regenerates Figure 4: the stuck-at
// adherence histogram of the 74181 ALU.
func BenchmarkFig4_AdherenceHistogram(b *testing.B) {
	benchFigure(b, benchRunner(b).Fig4)
}

// BenchmarkFig5_BridgingStuckAtProportions regenerates Figure 5: the
// proportions of AND and OR NFBFs with stuck-at behavior per circuit.
func BenchmarkFig5_BridgingStuckAtProportions(b *testing.B) {
	benchFigure(b, benchRunner(b).Fig5)
}

// BenchmarkFig6_BridgingHistograms regenerates Figure 6: bridging fault
// detection probability histograms on c95s.
func BenchmarkFig6_BridgingHistograms(b *testing.B) {
	benchFigure(b, benchRunner(b).Fig6)
}

// BenchmarkFig7_BridgingTrend regenerates Figure 7: mean bridging
// detectability trends versus netlist size.
func BenchmarkFig7_BridgingTrend(b *testing.B) {
	benchFigure(b, benchRunner(b).Fig7)
}

// BenchmarkFig8_BridgingPODistance regenerates Figure 8: mean bridging
// detectability versus maximum levels to a primary output on c1355s.
func BenchmarkFig8_BridgingPODistance(b *testing.B) {
	benchFigure(b, benchRunner(b).Fig8)
}

// --- Baseline comparison (§1, §3) ----------------------------------------
//
// The paper motivates Difference Propagation against exhaustive
// simulation. These two benchmarks measure the per-fault cost of each
// method on the same circuit and fault set (the 74181 ALU, 2^14 input
// space), making the comparison the paper only argues qualitatively.

func BenchmarkBaseline_DPPerFault(b *testing.B) {
	e, err := diffprop.New(circuits.MustGet("alu181"), nil)
	if err != nil {
		b.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fs[i%len(fs)]
		if r := e.StuckAt(f); r.Detectability < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkBaseline_ExhaustiveSimPerFault(b *testing.B) {
	c := circuits.MustGet("alu181").Decompose2()
	fs := faults.CheckpointStuckAts(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fs[i%len(fs)]
		if d := simulate.ExhaustiveDetectabilityStuckAt(c, f); d < 0 {
			b.Fatal("impossible")
		}
	}
}

// --- Ablations of DESIGN.md design choices -------------------------------

// BenchmarkAblation_VariableOrderNatural quantifies the cost of the
// paper's benchmark-declaration variable order against the DFS default on
// the order-sensitive priority controller.
func BenchmarkAblation_VariableOrderNatural(b *testing.B) {
	c := circuits.MustGet("c432s")
	work := c.Decompose2()
	for i := 0; i < b.N; i++ {
		e, err := diffprop.New(c, &diffprop.Options{Order: work.InputNames()})
		if err != nil {
			b.Fatal(err)
		}
		fs := faults.CheckpointStuckAts(e.Circuit)[:20]
		analysis.RunStuckAt(e, fs)
	}
}

// BenchmarkAblation_VariableOrderDFS is the DFS-ordered counterpart.
func BenchmarkAblation_VariableOrderDFS(b *testing.B) {
	c := circuits.MustGet("c432s")
	for i := 0; i < b.N; i++ {
		e, err := diffprop.New(c, nil)
		if err != nil {
			b.Fatal(err)
		}
		fs := faults.CheckpointStuckAts(e.Circuit)[:20]
		analysis.RunStuckAt(e, fs)
	}
}

// BenchmarkAblation_SelectiveTrace measures a full bridging analysis on
// the deep c1908s, the workload where skipping difference-free gates
// matters most.
func BenchmarkAblation_SelectiveTrace(b *testing.B) {
	e, err := diffprop.New(circuits.MustGet("c1908s"), nil)
	if err != nil {
		b.Fatal(err)
	}
	set, _, _ := analysis.BridgingSet(e.Circuit, faults.WiredAND, 30, 0.3, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf := set[i%len(set)]
		e.Bridging(bf)
	}
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkBDD_BuildGoodFunctions(b *testing.B) {
	c := circuits.MustGet("c1908s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := diffprop.New(c, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBDD_Apply(b *testing.B) {
	m := bdd.NewAnon(24)
	fs := make([]bdd.Ref, 24)
	for i := range fs {
		fs[i] = m.Var(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := m.And(fs[i%24], fs[(i+7)%24])
		y := m.Xor(x, fs[(i+13)%24])
		m.Or(x, y)
	}
}

func BenchmarkSimulate_ParallelPattern64(b *testing.B) {
	c := circuits.MustGet("c1908s")
	p := simulate.Random(len(c.Inputs), 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulate.GoodValues(c, p)
	}
}

// --- Extension experiments (X5-X9) and added substrates -----------------

func benchTable(b *testing.B, fn func() (report.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkX5_DoubleFaultCoverage regenerates the Hughes–McCluskey style
// double stuck-at coverage table.
func BenchmarkX5_DoubleFaultCoverage(b *testing.B) {
	benchTable(b, benchRunner(b).X5)
}

// BenchmarkX6_GateSubstitutionCoverage regenerates the gate-substitution
// coverage table.
func BenchmarkX6_GateSubstitutionCoverage(b *testing.B) {
	benchTable(b, benchRunner(b).X6)
}

// BenchmarkX7_RedesignForTestability regenerates the
// re-minimization-of-c1355s experiment.
func BenchmarkX7_RedesignForTestability(b *testing.B) {
	benchTable(b, benchRunner(b).X7)
}

// BenchmarkX8_ScoapCorrelation regenerates the SCOAP-versus-exact table.
func BenchmarkX8_ScoapCorrelation(b *testing.B) {
	benchTable(b, benchRunner(b).X8)
}

// BenchmarkX9_RandomPatternPrediction regenerates the predicted-versus-
// simulated random coverage table.
func BenchmarkX9_RandomPatternPrediction(b *testing.B) {
	benchTable(b, benchRunner(b).X9)
}

func BenchmarkScoap_Compute(b *testing.B) {
	c := circuits.MustGet("c1908s")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scoap.Compute(c)
	}
}

func BenchmarkEquiv_C499VsC1355(b *testing.B) {
	a := circuits.MustGet("c499s")
	c := circuits.MustGet("c1355s")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := equiv.Check(a, c); !r.Equivalent {
			b.Fatal("equivalence lost")
		}
	}
}

func BenchmarkOptimize_C1355s(b *testing.B) {
	c := circuits.MustGet("c1355s")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if opt := c.Optimize(); opt.NumGates() >= c.NumGates() {
			b.Fatal("optimizer regressed")
		}
	}
}

func BenchmarkDiagnose_BuildDictionary(b *testing.B) {
	e, err := diffprop.New(circuits.MustGet("c95s"), nil)
	if err != nil {
		b.Fatal(err)
	}
	fs := faults.CheckpointStuckAts(e.Circuit)
	gen := atpg.GenerateStuckAt(e, fs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := diagnose.Build(e, fs, gen.Vectors)
		if d.NumClasses() == 0 {
			b.Fatal("empty dictionary")
		}
	}
}

func BenchmarkATPG_GenerateAndCompact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := diffprop.New(circuits.MustGet("alu181"), nil)
		if err != nil {
			b.Fatal(err)
		}
		fs := faults.CheckpointStuckAts(e.Circuit)
		gen := atpg.GenerateStuckAt(e, fs, int64(i))
		if len(atpg.Compact(e, fs, gen.Vectors)) == 0 {
			b.Fatal("empty test set")
		}
	}
}

// BenchmarkBaseline_PODEMPerFault measures the conventional-ATPG
// baseline: one PODEM test per fault (versus DP's complete test set) on
// the same 74181 workload as the other Baseline benchmarks.
func BenchmarkBaseline_PODEMPerFault(b *testing.B) {
	c := circuits.MustGet("alu181").Decompose2()
	gen := podem.New(c)
	fs := faults.CheckpointStuckAts(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fs[i%len(fs)]
		if r := gen.Generate(f); !r.Found && !r.Redundant {
			b.Fatal("incomplete PODEM result")
		}
	}
}

// BenchmarkBaseline_DeductivePerVector measures one deductive simulation
// pass (all faults at once) on the 74181.
func BenchmarkBaseline_DeductivePerVector(b *testing.B) {
	c := circuits.MustGet("alu181").Decompose2()
	fs := faults.CheckpointStuckAts(c)
	vec := make([]bool, len(c.Inputs))
	for i := range vec {
		vec[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulate.DeductiveStuckAt(c, fs, vec)
	}
}

// BenchmarkBDD_SiftC432Natural measures transfer-based sifting repairing
// the worst-case natural order of the priority controller's good
// functions.
func BenchmarkBDD_SiftC432Natural(b *testing.B) {
	c := circuits.MustGet("c432s")
	work := c.Decompose2()
	e, err := diffprop.New(c, &diffprop.Options{Order: work.InputNames()})
	if err != nil {
		b.Fatal(err)
	}
	// One output cone keeps the bench under a few seconds; the full
	// 7-output sift follows the same trajectory, only slower.
	roots := []bdd.Ref{e.Good(e.Circuit.Outputs[0])}
	before := e.Manager().TotalSize(roots...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, size := e.Manager().Sift(roots, 1)
		if size >= before {
			b.Fatalf("sifting failed to shrink: %d -> %d", before, size)
		}
	}
}

func BenchmarkFaults_EnumerateNFBFs(b *testing.B) {
	c := circuits.MustGet("c1355s")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set := faults.AllNFBFs(c, faults.WiredAND); len(set) == 0 {
			b.Fatal("empty population")
		}
	}
}

// --- Parallel campaign scheduling ----------------------------------------
//
// BenchmarkParallel_StuckAtWorkStealing4 and
// BenchmarkParallel_StuckAtChunked4 compare the work-stealing
// clone-based campaign runner against the scheme it replaced — contiguous
// per-worker chunks with full BDD re-synthesis in every worker — on the
// same c1355s fault subset at 4 workers. Both produce identical studies;
// only the scheduling and engine-construction costs differ.
//
// The gap is a function of the host: selective trace makes the contiguous
// quarters of this fault set unequal (gate evaluations per quarter run
// 13584/11936/9156/5851, a 2.3× first-to-last spread, max/mean 1.34), so
// with >=4 real cores the chunked scheme idles three workers behind the
// first quarter while the work-stealer drains the set evenly and skips
// three of the four good-function synthesis passes. On a single-CPU host
// there is no parallelism to win back: both schemes serialize to the same
// total work and measure equal within noise.

func parallelBenchFaults(b *testing.B) []faults.StuckAt {
	b.Helper()
	c := circuits.MustGet("c1355s").Decompose2()
	fs := faults.CheckpointStuckAts(c)
	if len(fs) > 120 {
		fs = fs[:120]
	}
	return fs
}

func BenchmarkParallel_StuckAtWorkStealing4(b *testing.B) {
	c := circuits.MustGet("c1355s")
	fs := parallelBenchFaults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := analysis.RunStuckAtParallel(c, nil, fs, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Records) != len(fs) {
			b.Fatal("short study")
		}
	}
}

// BenchmarkParallel_StuckAtChunked4 reimplements the pre-rework scheduler
// inline: the fault set is split into contiguous quarters and each worker
// pays a full diffprop.New before analyzing its quarter.
func BenchmarkParallel_StuckAtChunked4(b *testing.B) {
	c := circuits.MustGet("c1355s")
	fs := parallelBenchFaults(b)
	const workers = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		records := make([]analysis.StuckAtRecord, len(fs))
		var wg sync.WaitGroup
		errs := make([]error, workers)
		chunk := (len(fs) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(fs) {
				hi = len(fs)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				e, err := diffprop.New(c, nil)
				if err != nil {
					errs[w] = err
					return
				}
				s := analysis.RunStuckAt(e, fs[lo:hi])
				copy(records[lo:], s.Records)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
